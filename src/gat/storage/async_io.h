#ifndef GAT_STORAGE_ASYNC_IO_H_
#define GAT_STORAGE_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gat/storage/block_cache.h"
#include "gat/storage/disk_tier.h"
#include "gat/storage/mapped_file.h"

namespace gat {

/// How AsyncBlockIo physically issues its reads.
enum class IoBackend : uint8_t {
  /// Portable fallback: a small pool of worker threads doing pread(2).
  /// Exercises the exact same submission/completion scheduling path as
  /// the io_uring backend, so CI containers that seccomp-block io_uring
  /// still cover every layer above the syscall.
  kThreadPool = 0,
  /// io_uring via raw syscalls (no liburing dependency): one SQ/CQ ring
  /// pair, submissions batched under a mutex, one reaper thread waiting
  /// on completions.
  kIoUring = 1,
};

const char* IoBackendName(IoBackend backend);

/// Runtime probe: can this process set up an io_uring instance at all?
/// False on pre-5.1 kernels (ENOSYS) and in sandboxes/containers whose
/// seccomp policy blocks the syscall (EPERM/EACCES). Probed once per
/// process and cached — the answer cannot change while we run.
bool ProbeIoUring();

/// AsyncBlockIo knobs.
struct AsyncIoOptions {
  /// Worker threads of the pread fallback pool (clamped to [1, 16]).
  uint32_t workers = 2;
  /// In-flight request bound; also the io_uring queue depth (rounded to
  /// a power of two, clamped to [4, 512]). Submissions past the bound
  /// block until completions free a slot.
  uint32_t queue_depth = 64;
  /// False forces the thread-pool backend even where io_uring probes
  /// available (tests, A/B benches). The GAT_IO_BACKEND environment
  /// variable overrides both directions: "pool" forces the fallback,
  /// "uring" insists on io_uring (falling back, with the probe's
  /// verdict logged through backend(), when unavailable).
  bool allow_io_uring = true;
};

/// An asynchronous block-read engine over plain file descriptors — the
/// I/O half of the "yield instead of stall" storage design. Callers
/// submit positioned reads with a completion callback; the backend
/// (io_uring where the kernel and sandbox allow it, a pread worker pool
/// everywhere else) runs them off the submitting thread and invokes the
/// callback from its completion context.
///
/// Completion callbacks must be fast and non-blocking: they run on the
/// reaper/worker threads that every other in-flight read shares. The
/// intended pattern is "verify, publish, then hand the continuation to
/// an executor" (see AsyncDiskTier / TaskGroup::Defer).
///
/// Thread-safety: fully internally synchronized; `SubmitRead` may be
/// called from any thread EXCEPT a completion callback — at the
/// in-flight bound a submit-from-callback would deadlock the very
/// completion context the bound waits on.
class AsyncBlockIo {
 public:
  explicit AsyncBlockIo(const AsyncIoOptions& options = {});
  /// Drains every in-flight read (their callbacks run) before tearing
  /// the backend down.
  ~AsyncBlockIo();

  AsyncBlockIo(const AsyncBlockIo&) = delete;
  AsyncBlockIo& operator=(const AsyncBlockIo&) = delete;

  /// Reads `len` bytes at `offset` of `fd` into `buf`, then invokes
  /// `done(result)` from the completion context: `result` is the byte
  /// count pread would return (short at EOF) or a negative errno.
  /// `buf` must stay valid until `done` runs. Blocks only when the
  /// in-flight bound is reached.
  void SubmitRead(int fd, uint64_t offset, void* buf, uint32_t len,
                  std::function<void(int64_t)> done);

  /// Blocks until every read submitted so far has completed.
  void Drain();

  IoBackend backend() const { return backend_; }
  const char* backend_name() const { return IoBackendName(backend_); }

  uint64_t reads_submitted() const {
    return reads_submitted_.load(std::memory_order_relaxed);
  }
  uint64_t reads_completed() const {
    return reads_completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    int fd = -1;
    uint64_t offset = 0;
    void* buf = nullptr;
    uint32_t len = 0;
    std::function<void(int64_t)> done;
    // Bytes already read: both backends continue short reads from here
    // until the request is full, at EOF, or errored — callers always
    // see either `len`, the EOF-truncated total, or a negative errno.
    uint32_t progress = 0;
  };
  struct UringState;  // defined in async_io.cc (raw ring bookkeeping)

  void Complete(Request* request, int64_t result);
  void PoolWorkerLoop();
  void UringReaperLoop();
  bool SetupUring(uint32_t queue_depth);
  void TeardownUring();
  /// Places `request` (continuing at `progress`) on the SQ ring and
  /// io_uring_enter's it; caller holds submit_mu_.
  void UringSubmitLocked(Request* request);

  IoBackend backend_ = IoBackend::kThreadPool;
  uint32_t queue_depth_ = 64;

  // In-flight accounting shared by both backends: submission blocks at
  // queue_depth_, Drain() waits for zero.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  uint64_t inflight_ = 0;

  // Thread-pool backend.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::deque<Request*> pool_queue_;
  bool pool_stop_ = false;
  std::vector<std::thread> pool_workers_;

  // io_uring backend.
  std::unique_ptr<UringState> uring_;
  std::mutex submit_mu_;
  std::thread reaper_;

  std::atomic<uint64_t> reads_submitted_{0};
  std::atomic<uint64_t> reads_completed_{0};
};

/// Activity counters of one AsyncDiskTier (monotonic, relaxed).
struct AsyncTierStats {
  /// Demand fetches that found cold blocks and had to block the calling
  /// worker until the async reads completed — the blocked-slot metric.
  /// Staging exists to drive this toward zero; what remains are the
  /// blocks the predictor missed.
  uint64_t worker_stalls = 0;
  /// Cold blocks those stalled fetches waited on.
  uint64_t stalled_blocks = 0;
  /// Cold blocks submitted through StageExtents (the yield path: the
  /// query's executor slot was free while these were in flight).
  uint64_t staged_blocks = 0;
  /// Every block read the backend performed (stall + stage + prefetch).
  uint64_t async_reads = 0;
};

/// Explicit-async-I/O disk tier over one mapped snapshot — same cache,
/// same accounting, same verify-then-publish contract as
/// `MappedDiskTier`, different physics: a cold block is read with a
/// real positioned read (io_uring or pread pool) into a scratch buffer
/// and CRC-verified against the map-time checksum before it is
/// published; the bytes served to the index remain the zero-copy
/// mapping. Logical `disk_reads` and the per-block cache traffic are
/// bit-identical to the pagefault tier for the same access sequence —
/// the backends differ in wall time only.
///
/// The new capability is `StageExtents`: submit the cold blocks of a
/// predicted working set and get a completion callback instead of a
/// blocked thread — the hook `IoStager`/`QueryEngine` use to let a
/// query yield its executor slot while its I/O is in flight. Demand
/// misses that were not staged still complete synchronously inside
/// `Fetch` (counted as `worker_stalls`, the metric staging minimizes).
///
/// O_DIRECT: the tier opens a second descriptor with O_DIRECT when the
/// filesystem supports it and the cache block size is 4 KiB-aligned;
/// aligned whole-block reads go through it (bypassing the page cache —
/// real device I/O), everything else through the buffered descriptor.
///
/// Lifetime: same drain contract as MappedDiskTier, plus the destructor
/// drains the I/O engine before unregistering from the cache, so no
/// completion can publish into a recycled file id.
class AsyncDiskTier final : public DiskTier {
 public:
  AsyncDiskTier(const MappedFile* file, const std::string& path,
                BlockCache* cache, std::vector<uint32_t> block_crcs,
                const AsyncIoOptions& io_options = {});
  ~AsyncDiskTier() override;

  void Fetch(uint64_t offset, uint64_t bytes,
             DiskAccessCounter* counter) const override;

  /// Synchronous-completion warm: cold blocks are read asynchronously
  /// but the call returns only once they are published. Deterministic
  /// residency (the property the --threads 1 bench counters gate);
  /// overlap between queries comes from running Prefetch calls on
  /// executor tasks, not from fire-and-forget.
  void Prefetch(uint64_t offset, uint64_t bytes) const override;

  /// Stages the cache blocks covering `extents` (pairs of offset,
  /// bytes; zero-byte extents are skipped): resident blocks are warmed
  /// in place, cold blocks are submitted as async reads. Returns the
  /// number of cold blocks submitted; when it is 0, `ready` has already
  /// been invoked inline, otherwise `ready` fires from the completion
  /// context once every staged block is verified and published. Warm
  /// lookups count under the cache's prefetch stats, exactly like
  /// `Prefetch`.
  size_t StageExtents(std::span<const std::pair<uint64_t, uint64_t>> extents,
                      std::function<void()> ready) const;

  AsyncTierStats stats() const;

  IoBackend backend() const { return io_.backend(); }
  const char* backend_name() const { return io_.backend_name(); }
  /// True when the O_DIRECT descriptor is in use for aligned reads.
  bool direct_io() const { return direct_fd_ >= 0; }

  const BlockFileToken& token() const { return token_; }
  const BlockCache& cache() const { return *cache_; }

 private:
  struct BlockGroup;  // one batch of in-flight cold-block reads

  /// Submits async reads for `blocks` (deduplicated cold blocks). The
  /// reads race; publication does not: the last completion runs
  /// `FinalizeGroup`, which CRC-verifies and publishes every block *in
  /// block order* — so the cache's LRU evolution is a deterministic
  /// function of the access sequence, exactly as with the pagefault
  /// tier, no matter how the physical reads interleaved. `done` runs
  /// after the publishes (inline when `blocks` is empty); `prefetch`
  /// selects which cache stats/admission class the publishes land in.
  void SubmitBlockReads(std::vector<uint64_t> blocks,
                        std::function<void()> done, bool prefetch) const;
  void FinalizeGroup(BlockGroup* group) const;
  /// Synchronous wrapper: SubmitBlockReads + wait for completion.
  void ReadBlocksBlocking(std::vector<uint64_t> blocks, bool prefetch) const;

  const MappedFile* file_;
  BlockCache* cache_;
  BlockFileToken token_;
  std::vector<uint32_t> block_crcs_;
  int fd_ = -1;         // buffered descriptor (always open)
  int direct_fd_ = -1;  // O_DIRECT descriptor, -1 when unsupported

  mutable std::atomic<uint64_t> worker_stalls_{0};
  mutable std::atomic<uint64_t> stalled_blocks_{0};
  mutable std::atomic<uint64_t> staged_blocks_{0};
  mutable std::atomic<uint64_t> async_reads_{0};

  // Last member: destroyed (and therefore drained) first, so no
  // completion callback can outlive the fields above.
  mutable AsyncBlockIo io_;
};

}  // namespace gat

#endif  // GAT_STORAGE_ASYNC_IO_H_
