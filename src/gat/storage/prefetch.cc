#include "gat/storage/prefetch.h"

#include <algorithm>
#include <utility>

#include "gat/common/check.h"
#include "gat/index/apl.h"
#include "gat/index/grid.h"
#include "gat/index/itl.h"
#include "gat/shard/sharded_index.h"

namespace gat {
namespace {

/// The shared predictor: ITL candidate rows of the leaf cells within
/// Chebyshev ring `ring` around each query point (ring 0 = just the
/// point's own leaf — the PR 4 predictor), restricted to the point's
/// demanded activities, deduplicated and capped. Neighbor cells are
/// enumerated geometrically — offset the point by whole leaf-cell
/// strides and take LeafCode, which clamps at the space border — so no
/// Morton decode is needed and border points just re-find edge cells
/// (deduplicated away).
std::vector<TrajectoryId> PredictRows(const GatIndex& index,
                                      const Query& query, int ring,
                                      size_t max_rows) {
  const GridGeometry& grid = index.grid();
  const double cell_w = grid.space().Width() / grid.CellsPerAxis(grid.depth());
  const double cell_h = grid.space().Height() / grid.CellsPerAxis(grid.depth());
  std::vector<TrajectoryId> predicted;
  std::vector<uint32_t> cells;
  for (const auto& qp : query.points()) {
    cells.clear();
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        const Point p{qp.location.x + dx * cell_w,
                      qp.location.y + dy * cell_h};
        cells.push_back(grid.LeafCode(p));
      }
    }
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    for (const uint32_t leaf : cells) {
      for (ActivityId a : qp.activities) {
        const auto list = index.itl().Trajectories(leaf, a);
        predicted.insert(predicted.end(), list.begin(), list.end());
      }
    }
  }
  std::sort(predicted.begin(), predicted.end());
  predicted.erase(std::unique(predicted.begin(), predicted.end()),
                  predicted.end());
  if (predicted.size() > max_rows) predicted.resize(max_rows);
  return predicted;
}

}  // namespace

PrefetchScheduler::PrefetchScheduler(std::vector<const GatIndex*> indexes,
                                     const BlockCache* cache)
    : indexes_(std::move(indexes)), cache_(cache) {
  for (const GatIndex* index : indexes_) GAT_CHECK(index != nullptr);
}

PrefetchScheduler::PrefetchScheduler(const ShardedIndex& index)
    : sharded_(&index), cache_(index.block_cache()) {}

uint64_t PrefetchScheduler::WarmIndex(const GatIndex& index,
                                      const Query& query) const {
  // Predicted candidates, deduplicated per index: the ITL lists of the
  // leaf cell under each query point (plus the current feedback ring of
  // neighbor cells — the later retrieval rounds), restricted to that
  // point's demanded activities.
  const int ring =
      feedback_.enabled ? ring_.load(std::memory_order_relaxed) : 0;
  const std::vector<TrajectoryId> predicted =
      PredictRows(index, query, ring, kMaxRowsPerQuery);
  for (TrajectoryId t : predicted) index.apl().PrefetchRow(t);
  return predicted.size();
}

void PrefetchScheduler::ObserveBatch(uint64_t demand_misses,
                                     uint64_t queries) const {
  if (!feedback_.enabled || queries == 0) return;
  const double per_query =
      static_cast<double>(demand_misses) / static_cast<double>(queries);
  const int ring = ring_.load(std::memory_order_relaxed);
  if (per_query > feedback_.miss_threshold && ring < feedback_.max_ring) {
    // Searches kept missing past the warmed set: reach one ring further.
    ring_.store(ring + 1, std::memory_order_relaxed);
  } else if (per_query < feedback_.miss_threshold / 2 && ring > 0) {
    // Misses collapsed: the extra ring is warming cells nobody visits.
    ring_.store(ring - 1, std::memory_order_relaxed);
  }
}

void PrefetchScheduler::PrefetchQuery(const Query& query) const {
  uint64_t rows = 0;
  if (sharded_ != nullptr) {
    // One generation pin for the whole warm-up: the shard count cannot
    // change under the loop when a ReloadGeneration publishes a new cut
    // mid-query.
    const auto generation = sharded_->PinGeneration();
    for (uint32_t shard = 0; shard < generation->num_shards(); ++shard) {
      // Pin for exactly this shard's sweep: a concurrent ReloadShard
      // retires the revision only after the warm-up is done with it.
      const auto revision = generation->PinShard(shard);
      rows += WarmIndex(*revision->index, query);
    }
  } else {
    for (const GatIndex* index : indexes_) rows += WarmIndex(*index, query);
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  rows_warmed_.fetch_add(rows, std::memory_order_relaxed);
}

void PrefetchScheduler::SubmitBatch(const std::vector<Query>& queries,
                                    TaskGroup& group, uint32_t fanout) const {
  const uint32_t tasks = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::min<size_t>(fanout, queries.size())));
  for (uint32_t slot = 0; slot < tasks; ++slot) {
    group.Submit([this, &queries, slot, tasks] {
      for (size_t i = slot; i < queries.size(); i += tasks) {
        PrefetchQuery(queries[i]);
      }
    });
  }
}

void PrefetchScheduler::PrefetchBatch(const std::vector<Query>& queries) const {
  for (const Query& q : queries) PrefetchQuery(q);
}

IoStager::IoStager(const GatIndex* index, const AsyncDiskTier* tier)
    : index_(index), tier_(tier) {
  GAT_CHECK(index_ != nullptr);
  GAT_CHECK(tier_ != nullptr);
}

size_t IoStager::Stage(const Query& query, std::function<void()> ready) const {
  const std::vector<TrajectoryId> predicted = PredictRows(
      *index_, query, /*ring=*/0, PrefetchScheduler::kMaxRowsPerQuery);
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  extents.reserve(predicted.size());
  for (TrajectoryId t : predicted) {
    extents.push_back(index_->apl().RowExtent(t));
  }
  const size_t staged = tier_->StageExtents(extents, std::move(ready));
  if (staged == 0) {
    queries_inline_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_yielded_.fetch_add(1, std::memory_order_relaxed);
    blocks_staged_.fetch_add(staged, std::memory_order_relaxed);
  }
  return staged;
}

}  // namespace gat
