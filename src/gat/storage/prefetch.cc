#include "gat/storage/prefetch.h"

#include <algorithm>

#include "gat/common/check.h"
#include "gat/index/itl.h"
#include "gat/shard/sharded_index.h"

namespace gat {

PrefetchScheduler::PrefetchScheduler(std::vector<const GatIndex*> indexes,
                                     const BlockCache* cache)
    : indexes_(std::move(indexes)), cache_(cache) {
  for (const GatIndex* index : indexes_) GAT_CHECK(index != nullptr);
}

PrefetchScheduler::PrefetchScheduler(const ShardedIndex& index)
    : sharded_(&index), cache_(index.block_cache()) {}

uint64_t PrefetchScheduler::WarmIndex(const GatIndex& index,
                                      const Query& query) const {
  // Predicted candidates, deduplicated per index: the ITL lists of the
  // leaf cell under each query point, restricted to that point's
  // demanded activities — the rows the first retrieval rounds resolve.
  std::vector<TrajectoryId> predicted;
  for (const auto& qp : query.points()) {
    const uint32_t leaf = index.grid().LeafCode(qp.location);
    for (ActivityId a : qp.activities) {
      const auto list = index.itl().Trajectories(leaf, a);
      predicted.insert(predicted.end(), list.begin(), list.end());
    }
  }
  std::sort(predicted.begin(), predicted.end());
  predicted.erase(std::unique(predicted.begin(), predicted.end()),
                  predicted.end());
  if (predicted.size() > kMaxRowsPerQuery) {
    predicted.resize(kMaxRowsPerQuery);
  }
  for (TrajectoryId t : predicted) index.apl().PrefetchRow(t);
  return predicted.size();
}

void PrefetchScheduler::PrefetchQuery(const Query& query) const {
  uint64_t rows = 0;
  if (sharded_ != nullptr) {
    for (uint32_t shard = 0; shard < sharded_->num_shards(); ++shard) {
      // Pin for exactly this shard's sweep: a concurrent ReloadShard
      // retires the revision only after the warm-up is done with it.
      const auto revision = sharded_->PinShard(shard);
      rows += WarmIndex(*revision->index, query);
    }
  } else {
    for (const GatIndex* index : indexes_) rows += WarmIndex(*index, query);
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  rows_warmed_.fetch_add(rows, std::memory_order_relaxed);
}

void PrefetchScheduler::SubmitBatch(const std::vector<Query>& queries,
                                    TaskGroup& group, uint32_t fanout) const {
  const uint32_t tasks = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::min<size_t>(fanout, queries.size())));
  for (uint32_t slot = 0; slot < tasks; ++slot) {
    group.Submit([this, &queries, slot, tasks] {
      for (size_t i = slot; i < queries.size(); i += tasks) {
        PrefetchQuery(queries[i]);
      }
    });
  }
}

void PrefetchScheduler::PrefetchBatch(const std::vector<Query>& queries) const {
  for (const Query& q : queries) PrefetchQuery(q);
}

}  // namespace gat
