#ifndef GAT_STORAGE_MAPPED_SNAPSHOT_H_
#define GAT_STORAGE_MAPPED_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/storage/async_io.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/disk_tier.h"
#include "gat/storage/mapped_file.h"

namespace gat {

/// Which physical read path serves the snapshot's disk-resident bytes.
enum class SnapshotIoMode : uint8_t {
  /// Pagefault-driven reads through the mapping (`MappedDiskTier`) —
  /// the PR 4 behavior: a cold block stalls the faulting thread.
  kMmap = 0,
  /// Explicit async block I/O (`AsyncDiskTier`, io_uring or pread
  /// pool): cold blocks are real positioned reads that can be staged
  /// ahead of a query so it yields its executor slot instead of
  /// stalling. Logical `disk_reads` and per-block cache accounting are
  /// bit-identical to kMmap; only wall time differs.
  kAsync = 1,
};

/// Block-cached real-I/O tier over one mapped snapshot file.
///
/// A fetch charges the same single logical read the simulated tier
/// charges, then runs the object's covering cache blocks through the
/// shared `BlockCache`: hits are bookkeeping only; misses do the real
/// page-granular read — walking the block's bytes in the mapping (the
/// kernel faults the pages in) and verifying its CRC32 against the
/// per-block checksums computed when the file was mapped, so bit rot
/// under a served mapping is caught at read time, not at answer time.
class MappedDiskTier final : public DiskTier {
 public:
  /// `file` and `cache` are non-owning and must outlive the tier (the
  /// owning `MappedSnapshot` guarantees both). Registers one file
  /// namespace in the cache; the destructor unregisters it, purging
  /// every block this mapping made resident — the invalidation that
  /// makes hot-swapping a snapshot against a *shared* cache safe. The
  /// caller owns the drain contract: no `Fetch`/`Prefetch` may be in
  /// flight when the tier is destroyed (the epoch-pinned
  /// `ShardRevision` of gat/shard enforces this on the serving path;
  /// a straggler that slips through is dropped by the cache's
  /// generation check rather than served stale).
  MappedDiskTier(const MappedFile* file, BlockCache* cache,
                 std::vector<uint32_t> block_crcs);
  ~MappedDiskTier() override;

  void Fetch(uint64_t offset, uint64_t bytes,
             DiskAccessCounter* counter) const override;
  void Prefetch(uint64_t offset, uint64_t bytes) const override;

  const BlockFileToken& token() const { return token_; }
  const BlockCache& cache() const { return *cache_; }

 private:
  /// The real read of one cache block: touch every byte (pagefault) and
  /// verify its checksum. Aborts on CRC mismatch — bytes rotting under
  /// an actively served mapping cannot be answered around.
  void ReadBlock(uint64_t block) const;

  const MappedFile* file_;
  BlockCache* cache_;
  BlockFileToken token_;
  std::vector<uint32_t> block_crcs_;
};

/// MappedSnapshot::Load knobs. Mirrors `LoadSnapshot`'s expectations
/// plus the cache wiring.
struct MappedSnapshotOptions {
  /// When non-null, the stored GatConfig must equal *expected.
  const GatConfig* expected = nullptr;
  /// Non-zero = require a matching stored dataset fingerprint (both
  /// sides must opt in, like LoadSnapshot).
  uint32_t expected_fingerprint = 0;
  /// Fans the load's full-file CRC sweep (whole-payload gate + the
  /// per-block checksums) *and* the structural validation of the big
  /// sections out as executor tasks — the per-file load goes
  /// multi-core, which is what keeps reload latency off the hot-swap
  /// critical path. The accept/reject decision and every checksum are
  /// bit-identical to the sequential sweep (chunk CRCs are folded with
  /// Crc32Combine).
  Executor* executor = nullptr;
  /// Block cache to serve the disk tier through (non-owning — the way a
  /// sharded process shares one budget across every shard's mapping).
  /// nullptr = the snapshot owns a private cache built from
  /// `cache_config`.
  BlockCache* cache = nullptr;
  BlockCacheConfig cache_config;
  /// Physical read path of the disk tier (kMmap preserves the PR 4
  /// behavior exactly); `io_options` only applies under kAsync.
  SnapshotIoMode io_mode = SnapshotIoMode::kMmap;
  AsyncIoOptions io_options;
};

/// A `GatIndex` served from an mmap-ed `GATS` snapshot.
///
/// The RAM-resident components (ITL, TAS, HICL levels 1..h) deserialize
/// exactly as `LoadSnapshot` does; the disk-resident ones (APL rows,
/// HICL levels h+1..d) stay in the file and are served as zero-copy
/// spans into the mapping, read through a `MappedDiskTier` — so a
/// sharded process cold-starts without materializing its disk tier, and
/// every disk access is page-granular real I/O through the block cache.
///
/// Load-time guarantees match `LoadSnapshot`: magic/version/CRC checks,
/// identical config/fingerprint gating, identical structural validation
/// (run over the mapped spans), nullptr on any error. A loaded index
/// answers bit-identically to the stream-loaded or freshly built one,
/// with equal logical `disk_reads` counts.
///
/// Lifetime: the `MappedSnapshot` owns the mapping, the tier and the
/// index; `index()` views die with it.
class MappedSnapshot {
 public:
  static std::unique_ptr<MappedSnapshot> Load(
      const std::string& path, const MappedSnapshotOptions& options = {});

  const GatIndex& index() const { return *index_; }
  const DiskTier& tier() const { return *tier_; }
  /// The async tier when loaded with SnapshotIoMode::kAsync (the
  /// staging/stall API lives there); nullptr under kMmap.
  const AsyncDiskTier* async_tier() const { return async_tier_; }
  /// The cache the tier reads through (shared or privately owned).
  const BlockCache& cache() const { return *cache_; }
  size_t file_bytes() const { return file_.size(); }
  /// Wall-clock seconds of `Load` (also in `index().build_seconds()`).
  double load_seconds() const { return load_seconds_; }

 private:
  MappedSnapshot() = default;

  MappedFile file_;
  std::unique_ptr<BlockCache> owned_cache_;  // null when sharing
  BlockCache* cache_ = nullptr;
  std::unique_ptr<DiskTier> tier_;
  const AsyncDiskTier* async_tier_ = nullptr;  // aliases tier_ under kAsync
  std::unique_ptr<GatIndex> index_;
  double load_seconds_ = 0.0;
};

}  // namespace gat

#endif  // GAT_STORAGE_MAPPED_SNAPSHOT_H_
