#include "gat/storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace gat {

MappedFile::~MappedFile() { Close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      valid_(std::exchange(other.valid_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    valid_ = std::exchange(other.valid_, false);
  }
  return *this;
}

bool MappedFile::Open(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    // POSIX rejects zero-length mappings; an empty file is still a
    // valid (empty) object.
    ::close(fd);
    valid_ = true;
    return true;
  }
  void* addr = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // not needed past this point either way.
  ::close(fd);
  if (addr == MAP_FAILED) return false;
  data_ = static_cast<const char*>(addr);
  size_ = static_cast<size_t>(st.st_size);
  valid_ = true;
  return true;
}

void MappedFile::Close() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
}

}  // namespace gat
