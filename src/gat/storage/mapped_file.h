#ifndef GAT_STORAGE_MAPPED_FILE_H_
#define GAT_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <string>

namespace gat {

/// A read-only memory mapping of one file — the zero-copy substrate of
/// the storage subsystem. Move-only RAII: the mapping lives exactly as
/// long as the object, so anything handing out views into it (a
/// `MappedSnapshot`) must own it.
///
/// `Open` maps the whole file `PROT_READ`/`MAP_PRIVATE`; read-only file
/// permissions are sufficient (serving never writes). An existing empty
/// file maps as valid with `size() == 0` and `data() == nullptr`
/// (POSIX rejects zero-length mappings); directories, missing and
/// unreadable files fail. No exceptions — `Open` returns false and the
/// object stays invalid.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path`. Replaces any previous mapping. Returns false (and
  /// invalidates the object) on open/stat/mmap failure.
  bool Open(const std::string& path);

  bool valid() const { return valid_; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void Close();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool valid_ = false;
};

}  // namespace gat

#endif  // GAT_STORAGE_MAPPED_FILE_H_
