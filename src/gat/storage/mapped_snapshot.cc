#include "gat/storage/mapped_snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <span>

#include "gat/common/check.h"
#include "gat/index/apl.h"
#include "gat/index/grid.h"
#include "gat/index/hicl.h"
#include "gat/index/itl.h"
#include "gat/index/snapshot_format.h"
#include "gat/index/snapshot_validate.h"
#include "gat/index/tas.h"
#include "gat/util/stopwatch.h"

namespace gat {
namespace {

using snapshot_format::Crc32;
using snapshot_format::Crc32Update;
using snapshot_format::kHeaderBytes;
using snapshot_format::kMagic;
using snapshot_format::kTagApl;
using snapshot_format::kTagEnd;
using snapshot_format::kTagGrid;
using snapshot_format::kTagHicl;
using snapshot_format::kTagItl;
using snapshot_format::kTagTas;
using snapshot_format::kVersion;
using snapshot_validate::OffsetsValid;
using snapshot_validate::ValidateRows;

/// Bounds-checked cursor over the mapped bytes — the in-memory analogue
/// of the stream reads in gat/index/snapshot.cc, plus the one operation
/// a stream cannot offer: handing out a zero-copy typed span of a
/// vector's payload instead of materializing it.
struct ByteReader {
  const char* data;
  size_t size;
  size_t pos;

  size_t Remaining() const { return size - pos; }

  template <typename T>
  bool ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (Remaining() < sizeof(T)) return false;
    std::memcpy(out, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool ExpectTag(const char (&tag)[4]) {
    if (Remaining() < 4) return false;
    const bool ok = std::memcmp(data + pos, tag, 4) == 0;
    pos += 4;
    return ok;
  }

  /// Zero-copy view of a `u64 count + raw elements` vector. The count is
  /// bounded by the remaining bytes (tighter than the stream loader's
  /// whole-payload bound, rejecting at least everything it rejects) and
  /// the element array must sit 4-byte aligned — guaranteed by the
  /// format's all-fields-multiple-of-4 invariant (snapshot_format.h).
  template <typename T>
  bool ReadSpan(std::span<const T>* out) {
    static_assert(alignof(T) <= 4);
    uint64_t count = 0;
    if (!ReadPod(&count) || count > Remaining() / sizeof(T)) return false;
    if (reinterpret_cast<uintptr_t>(data + pos) % alignof(T) != 0) {
      return false;  // malformed beyond what the writer can produce
    }
    *out = {reinterpret_cast<const T*>(data + pos), count};
    pos += static_cast<size_t>(count) * sizeof(T);
    return true;
  }

  /// Deserializing read for the RAM-resident components.
  template <typename T>
  bool ReadVec(std::vector<T>* v) {
    std::span<const T> s;
    if (!ReadSpan(&s)) return false;
    v->assign(s.begin(), s.end());
    return true;
  }
};

}  // namespace

// --------------------------------------------------------------------------
// MappedDiskTier
// --------------------------------------------------------------------------

MappedDiskTier::MappedDiskTier(const MappedFile* file, BlockCache* cache,
                               std::vector<uint32_t> block_crcs)
    : file_(file),
      cache_(cache),
      token_(cache->RegisterFile()),
      block_crcs_(std::move(block_crcs)) {}

MappedDiskTier::~MappedDiskTier() { cache_->Unregister(token_); }

void MappedDiskTier::ReadBlock(uint64_t block) const {
  const uint32_t bs = cache_->block_bytes();
  const uint64_t start = block * bs;
  GAT_CHECK(block < block_crcs_.size());
  const size_t len =
      std::min<uint64_t>(bs, static_cast<uint64_t>(file_->size()) - start);
  // The real read: every byte of the block goes through the CPU (the
  // kernel faults the pages in on first touch) and must still match the
  // checksum recorded at map time — media/bit rot under an actively
  // served mapping is a hard failure, not a subtly wrong answer.
  GAT_CHECK(Crc32(file_->data() + start, len) == block_crcs_[block]);
}

void MappedDiskTier::Fetch(uint64_t offset, uint64_t bytes,
                           DiskAccessCounter* counter) const {
  // nullptr = "this query already fetched the object" — same contract as
  // the simulated tier, no charge, no block traffic.
  if (counter == nullptr) return;
  counter->RecordRead();
  if (bytes == 0) return;
  GAT_DCHECK(offset + bytes <= file_->size());
  const uint32_t bs = cache_->block_bytes();
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + bytes - 1) / bs;
  for (uint64_t b = first; b <= last; ++b) {
    if (cache_->Touch(token_, b)) {
      counter->RecordBlockHit();
    } else {
      // Verify-then-publish: the block becomes visible as resident only
      // after its bytes passed the checksum, so a concurrent hit can
      // never consume unverified data.
      ReadBlock(b);
      cache_->Publish(token_, b);
      counter->RecordBlockRead();
    }
  }
}

void MappedDiskTier::Prefetch(uint64_t offset, uint64_t bytes) const {
  if (bytes == 0) return;
  GAT_DCHECK(offset + bytes <= file_->size());
  const uint32_t bs = cache_->block_bytes();
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + bytes - 1) / bs;
  for (uint64_t b = first; b <= last; ++b) {
    if (!cache_->Warm(token_, b)) {
      ReadBlock(b);
      cache_->Publish(token_, b);
    }
  }
}

// --------------------------------------------------------------------------
// MappedSnapshotIo — the zero-copy payload parser
// --------------------------------------------------------------------------

/// Befriended by GatIndex and the four components; mirrors SnapshotIo
/// (gat/index/snapshot.cc) section by section with identical config,
/// fingerprint and structural gating, differing only in storage: ITL,
/// TAS and the memory HICL levels deserialize, APL rows and disk HICL
/// levels become spans into the mapping with their byte extents wired
/// to `tier`.
struct MappedSnapshotIo {
  static std::unique_ptr<GatIndex> LoadPayload(
      ByteReader& r, const MappedSnapshotOptions& options,
      const DiskTier* tier) {
    GatConfig config;
    int32_t depth = 0, memory_levels = 0, tas_intervals = 0;
    uint32_t fingerprint = 0;
    if (!r.ReadPod(&depth) || !r.ReadPod(&memory_levels) ||
        !r.ReadPod(&tas_intervals) || !r.ReadPod(&fingerprint)) {
      return nullptr;
    }
    config.depth = depth;
    config.memory_levels = memory_levels;
    config.tas_intervals = tas_intervals;
    if (options.expected != nullptr && !(config == *options.expected)) {
      return nullptr;
    }
    if (options.expected_fingerprint != 0 && fingerprint != 0 &&
        fingerprint != options.expected_fingerprint) {
      return nullptr;
    }
    if (config.depth < 1 || config.depth > 12 || config.memory_levels < 0 ||
        config.memory_levels > config.depth || config.tas_intervals < 1) {
      return nullptr;
    }

    if (!r.ExpectTag(kTagGrid)) return nullptr;
    Rect space;
    if (!r.ReadPod(&space.min.x) || !r.ReadPod(&space.min.y) ||
        !r.ReadPod(&space.max.x) || !r.ReadPod(&space.max.y)) {
      return nullptr;
    }
    if (!(space.Width() > 0.0) || !(space.Height() > 0.0)) return nullptr;

    std::unique_ptr<GatIndex> index(
        new GatIndex(config, GridGeometry::Restore(space, config.depth)));
    index->hicl_ = LoadHicl(r, config, tier, options.executor);
    if (index->hicl_ == nullptr) return nullptr;
    uint64_t itl_rows_required = 0;
    index->itl_ = LoadItl(r, config, &itl_rows_required);
    if (index->itl_ == nullptr) return nullptr;
    index->tas_ = LoadTas(r, config);
    if (index->tas_ == nullptr) return nullptr;
    index->apl_ = LoadApl(r, tier, options.executor);
    if (index->apl_ == nullptr) return nullptr;
    if (!r.ExpectTag(kTagEnd)) return nullptr;

    const uint64_t rows = index->tas_->num_trajectories();
    if (index->apl_->num_trajectories() != rows) return nullptr;
    if (itl_rows_required > rows) return nullptr;
    return index;
  }

  static void set_build_seconds(GatIndex& index, double seconds) {
    index.build_seconds_ = seconds;
  }

 private:
  // ------------------------------------------------------------------ HICL
  static std::unique_ptr<Hicl> LoadHicl(ByteReader& r, const GatConfig& config,
                                        const DiskTier* tier,
                                        Executor* executor) {
    if (!r.ExpectTag(kTagHicl)) return nullptr;
    std::unique_ptr<Hicl> hicl(new Hicl());
    hicl->depth_ = config.depth;
    hicl->memory_levels_ = config.memory_levels;
    hicl->tier_ = tier;
    uint64_t memory_bytes = 0, disk_bytes = 0, num_activities = 0;
    // Every activity stores `depth` vectors of >= 8 bytes (the count
    // word), so any honest count satisfies this bound — and a forged
    // one fails before the resize can over-allocate.
    if (!r.ReadPod(&memory_bytes) || !r.ReadPod(&disk_bytes) ||
        !r.ReadPod(&num_activities) ||
        num_activities >
            r.Remaining() / (8u * static_cast<uint32_t>(config.depth))) {
      return nullptr;
    }
    hicl->memory_bytes_ = memory_bytes;
    hicl->disk_bytes_ = disk_bytes;
    hicl->num_activities_ = static_cast<uint32_t>(num_activities);
    // Memory levels deserialize (paper tier: RAM-resident, independent
    // of the mapping's page residency); disk levels stay in the file.
    hicl->owned_.resize(num_activities);
    hicl->views_.resize(num_activities * static_cast<size_t>(config.depth));
    for (uint64_t a = 0; a < num_activities; ++a) {
      auto& lists = hicl->owned_[a];
      lists.cells.resize(config.depth);
      for (int level = 1; level <= config.depth; ++level) {
        Hicl::LevelView& view =
            hicl->views_[a * static_cast<size_t>(config.depth) + (level - 1)];
        if (level <= config.memory_levels) {
          if (!r.ReadVec(&lists.cells[level - 1])) return nullptr;
          const auto& cells = lists.cells[level - 1];
          view.cells = {cells.data(), cells.size()};
          view.tier_bytes = cells.size() * sizeof(uint32_t);
        } else {
          const uint64_t list_start = r.pos;
          if (!r.ReadSpan(&view.cells)) return nullptr;
          view.tier_offset = list_start;
          view.tier_bytes = r.pos - list_start;  // count word + elements
        }
      }
    }
    const bool rows_ok = ValidateRows(
        executor, num_activities, [&hicl, &config](size_t row) {
          for (int level = 1; level <= config.depth; ++level) {
            const auto cells =
                hicl->views_[row * static_cast<size_t>(config.depth) +
                             (level - 1)]
                    .cells;
            const uint64_t cell_count = uint64_t{1} << (2 * level);
            if (!std::is_sorted(cells.begin(), cells.end()) ||
                (!cells.empty() && cells.back() >= cell_count)) {
              return false;
            }
          }
          return true;
        });
    return rows_ok ? std::move(hicl) : nullptr;
  }

  // ------------------------------------------------------------------- ITL
  static std::unique_ptr<Itl> LoadItl(ByteReader& r, const GatConfig& config,
                                      uint64_t* rows_required) {
    if (!r.ExpectTag(kTagItl)) return nullptr;
    std::unique_ptr<Itl> itl(new Itl());
    uint64_t memory_bytes = 0, num_cells = 0;
    // Per cell: a 4-byte code plus three 8-byte count words, minimum.
    if (!r.ReadPod(&memory_bytes) || !r.ReadPod(&num_cells) ||
        num_cells > r.Remaining() / 28u) {
      return nullptr;
    }
    const uint64_t leaf_cell_count = uint64_t{1} << (2 * config.depth);
    itl->memory_bytes_ = memory_bytes;
    itl->cells_.reserve(num_cells);
    *rows_required = 0;
    for (uint64_t c = 0; c < num_cells; ++c) {
      uint32_t code = 0;
      Itl::CellPostings cell;
      if (!r.ReadPod(&code) || code >= leaf_cell_count ||
          !r.ReadVec(&cell.activities) || !r.ReadVec(&cell.offsets) ||
          !r.ReadVec(&cell.trajectories)) {
        return nullptr;
      }
      if (!OffsetsValid(cell.offsets, cell.activities.size(),
                        cell.trajectories.size()) ||
          !std::is_sorted(cell.activities.begin(), cell.activities.end())) {
        return nullptr;
      }
      for (TrajectoryId t : cell.trajectories) {
        *rows_required = std::max<uint64_t>(*rows_required, uint64_t{t} + 1);
      }
      if (!itl->cells_.emplace(code, std::move(cell)).second) return nullptr;
    }
    return itl;
  }

  // ------------------------------------------------------------------- TAS
  static std::unique_ptr<Tas> LoadTas(ByteReader& r, const GatConfig& config) {
    if (!r.ExpectTag(kTagTas)) return nullptr;
    std::unique_ptr<Tas> tas(new Tas());
    tas->num_intervals_ = config.tas_intervals;
    if (!r.ReadVec(&tas->intervals_) || !r.ReadVec(&tas->offsets_)) {
      return nullptr;
    }
    if (tas->offsets_.empty() ||
        !OffsetsValid(tas->offsets_, tas->offsets_.size() - 1,
                      tas->intervals_.size())) {
      return nullptr;
    }
    return tas;
  }

  // ------------------------------------------------------------------- APL
  static std::unique_ptr<Apl> LoadApl(ByteReader& r, const DiskTier* tier,
                                      Executor* executor) {
    if (!r.ExpectTag(kTagApl)) return nullptr;
    std::unique_ptr<Apl> apl(new Apl());
    apl->tier_ = tier;
    uint64_t disk_bytes = 0, num_trajectories = 0;
    // Per row: three 8-byte count words, minimum.
    if (!r.ReadPod(&disk_bytes) || !r.ReadPod(&num_trajectories) ||
        num_trajectories > r.Remaining() / 24u) {
      return nullptr;
    }
    apl->disk_bytes_ = disk_bytes;
    apl->rows_.resize(num_trajectories);
    for (auto& row : apl->rows_) {
      const uint64_t row_start = r.pos;
      if (!r.ReadSpan(&row.activities) || !r.ReadSpan(&row.offsets) ||
          !r.ReadSpan(&row.points)) {
        return nullptr;
      }
      row.tier_offset = row_start;
      row.tier_bytes = r.pos - row_start;  // three count words + elements
    }
    const bool rows_ok = ValidateRows(
        executor, apl->rows_.size(), [&apl](size_t i) {
          const auto& row = apl->rows_[i];
          return OffsetsValid(row.offsets, row.activities.size(),
                              row.points.size()) &&
                 std::is_sorted(row.activities.begin(), row.activities.end());
        });
    return rows_ok ? std::move(apl) : nullptr;
  }
};

// --------------------------------------------------------------------------
// MappedSnapshot
// --------------------------------------------------------------------------

std::unique_ptr<MappedSnapshot> MappedSnapshot::Load(
    const std::string& path, const MappedSnapshotOptions& options) {
  Stopwatch timer;
  std::unique_ptr<MappedSnapshot> snap(new MappedSnapshot());
  if (!snap->file_.Open(path)) return nullptr;
  const char* data = snap->file_.data();
  const size_t size = snap->file_.size();
  if (size < kHeaderBytes) return nullptr;

  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) return nullptr;
  uint32_t version = 0, stored_crc = 0;
  std::memcpy(&version, data + 4, sizeof(version));
  std::memcpy(&stored_crc, data + 8, sizeof(stored_crc));
  if (version != kVersion) return nullptr;

  // Cache first: its block size fixes the per-block checksum granularity.
  if (options.cache != nullptr) {
    snap->cache_ = options.cache;
  } else {
    snap->owned_cache_ = std::make_unique<BlockCache>(options.cache_config);
    snap->cache_ = snap->owned_cache_.get();
  }

  // One sweep over the mapping does double duty: the whole-payload CRC
  // gate (identical to LoadSnapshot's) and the per-block checksums the
  // tier verifies on every cache fill. This is the only full read the
  // cold start performs — nothing disk-resident is materialized. With
  // an executor the sweep fans out as contiguous block-range tasks and
  // the chunk CRCs are folded with Crc32Combine: every checksum — and
  // therefore the accept/reject decision — is bit-identical to the
  // sequential pass, but the per-file load is no longer single-core.
  const uint32_t bs = snap->cache_->block_bytes();
  const uint64_t num_blocks = (static_cast<uint64_t>(size) + bs - 1) / bs;
  std::vector<uint32_t> block_crcs(num_blocks);
  auto sweep_chunk = [&](uint64_t first_block, uint64_t end_block,
                         uint64_t* payload_len) {
    // Conditioned CRC of this chunk's payload bytes (>= kHeaderBytes),
    // plus every covered block's checksum.
    uint32_t crc = 0xFFFFFFFFu;
    *payload_len = 0;
    for (uint64_t b = first_block; b < end_block; ++b) {
      const uint64_t start = b * bs;
      const size_t len = std::min<uint64_t>(bs, size - start);
      block_crcs[b] = Crc32(data + start, len);
      const uint64_t payload_start = std::max<uint64_t>(start, kHeaderBytes);
      if (start + len > payload_start) {
        crc = Crc32Update(crc, data + payload_start,
                          start + len - payload_start);
        *payload_len += start + len - payload_start;
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };

  uint32_t payload_crc;
  Executor* executor = options.executor;
  // Below ~1 MiB of blocks the task submission would rival the scan.
  constexpr uint64_t kParallelSweepMinBlocks = 256;
  if (executor != nullptr && executor->threads() > 1 &&
      num_blocks >= kParallelSweepMinBlocks) {
    const uint64_t chunks =
        std::min<uint64_t>(executor->threads(), num_blocks);
    const uint64_t per_chunk = (num_blocks + chunks - 1) / chunks;
    std::vector<uint32_t> chunk_crcs(chunks, 0);
    std::vector<uint64_t> chunk_lens(chunks, 0);
    TaskGroup group(*executor);
    for (uint64_t c = 0; c < chunks; ++c) {
      group.Submit([&, c] {
        const uint64_t first = c * per_chunk;
        const uint64_t end = std::min(num_blocks, first + per_chunk);
        chunk_crcs[c] = sweep_chunk(first, end, &chunk_lens[c]);
      });
    }
    group.Wait();
    payload_crc = chunk_crcs[0];
    for (uint64_t c = 1; c < chunks; ++c) {
      payload_crc = snapshot_format::Crc32Combine(payload_crc, chunk_crcs[c],
                                                  chunk_lens[c]);
    }
  } else {
    uint64_t payload_len = 0;
    payload_crc = sweep_chunk(0, num_blocks, &payload_len);
  }
  if (payload_crc != stored_crc) return nullptr;

  if (options.io_mode == SnapshotIoMode::kAsync) {
    // Explicit-I/O tier: same cache, same per-block checksums, but cold
    // blocks become positioned reads through AsyncBlockIo (and gain the
    // staging API). The tier opens its own descriptors on `path`.
    auto async_tier = std::make_unique<AsyncDiskTier>(
        &snap->file_, path, snap->cache_, std::move(block_crcs),
        options.io_options);
    snap->async_tier_ = async_tier.get();
    snap->tier_ = std::move(async_tier);
  } else {
    snap->tier_ = std::make_unique<MappedDiskTier>(&snap->file_, snap->cache_,
                                                   std::move(block_crcs));
  }
  ByteReader reader{data, size, kHeaderBytes};
  snap->index_ = MappedSnapshotIo::LoadPayload(reader, options,
                                               snap->tier_.get());
  if (snap->index_ == nullptr) return nullptr;
  snap->load_seconds_ = timer.ElapsedMillis() / 1000.0;
  MappedSnapshotIo::set_build_seconds(*snap->index_, snap->load_seconds_);
  return snap;
}

}  // namespace gat
