#ifndef GAT_STORAGE_PREFETCH_H_
#define GAT_STORAGE_PREFETCH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/model/query.h"
#include "gat/storage/block_cache.h"

namespace gat {

/// Executor-task-based APL prefetch for queued batch queries — the first
/// real I/O overlap *between* the queries of a batch.
///
/// For every query point, the RAM-resident layers predict refinement's
/// disk reads for free: the leaf cell of the point's location plus the
/// point's demanded activities index straight into the ITL, whose
/// trajectory lists are exactly the candidates the first retrieval
/// rounds will hand to validation. The scheduler warms those
/// trajectories' APL posting blocks through each index's `DiskTier`
/// (`Apl::PrefetchRow`) — a no-op under the simulated tier, real
/// block-cache fills under an mmap-backed one.
///
/// Scheduling: `QueryEngine` submits the prefetch sweep as tasks into
/// the batch's own task group *before* the search tasks, so wherever the
/// pool has spare width the sweep runs concurrently with the first
/// queries and later queries find their candidate rows resident. With
/// no executor the sweep runs inline before the batch — deterministic,
/// which is what keeps `--threads 1` bench counters exact.
///
/// Thread-safety: const, internally synchronized stats; one instance may
/// serve any number of concurrent batches.
class PrefetchScheduler {
 public:
  /// Per-query cap on warmed APL rows, bounding the sweep on hub cells.
  static constexpr size_t kMaxRowsPerQuery = 512;

  /// `indexes` = one entry per shard (or a single index); `cache` is the
  /// block cache the batch stats should report (nullptr = none, e.g.
  /// purely simulated setups). All pointers are non-owning and must
  /// outlive the scheduler.
  explicit PrefetchScheduler(std::vector<const GatIndex*> indexes,
                             const BlockCache* cache = nullptr);

  /// Warms the predicted APL rows of one query across every index.
  void PrefetchQuery(const Query& query) const;

  /// Submits the batch sweep as `fanout` striped tasks into `group`
  /// (caller owns the barrier). `queries` must outlive the group.
  void SubmitBatch(const std::vector<Query>& queries, TaskGroup& group,
                   uint32_t fanout) const;

  /// Runs the whole sweep inline (the no-executor path).
  void PrefetchBatch(const std::vector<Query>& queries) const;

  /// The cache demand/prefetch stats feed from, or nullptr.
  const BlockCache* cache() const { return cache_; }

  struct Stats {
    uint64_t queries = 0;
    uint64_t rows_warmed = 0;
  };
  Stats stats() const {
    return {queries_.load(std::memory_order_relaxed),
            rows_warmed_.load(std::memory_order_relaxed)};
  }

 private:
  std::vector<const GatIndex*> indexes_;
  const BlockCache* cache_;
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rows_warmed_{0};
};

}  // namespace gat

#endif  // GAT_STORAGE_PREFETCH_H_
