#ifndef GAT_STORAGE_PREFETCH_H_
#define GAT_STORAGE_PREFETCH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/model/query.h"
#include "gat/storage/block_cache.h"

namespace gat {

class ShardedIndex;  // gat/shard; the pin-aware constructor below

/// Executor-task-based APL prefetch for queued batch queries — the first
/// real I/O overlap *between* the queries of a batch.
///
/// For every query point, the RAM-resident layers predict refinement's
/// disk reads for free: the leaf cell of the point's location plus the
/// point's demanded activities index straight into the ITL, whose
/// trajectory lists are exactly the candidates the first retrieval
/// rounds will hand to validation. The scheduler warms those
/// trajectories' APL posting blocks through each index's `DiskTier`
/// (`Apl::PrefetchRow`) — a no-op under the simulated tier, real
/// block-cache fills under an mmap-backed one.
///
/// Scheduling: `QueryEngine` submits the prefetch sweep as tasks into
/// the batch's own task group *before* the search tasks, so wherever the
/// pool has spare width the sweep runs concurrently with the first
/// queries and later queries find their candidate rows resident. With
/// no executor the sweep runs inline before the batch — deterministic,
/// which is what keeps `--threads 1` bench counters exact.
///
/// Thread-safety: const, internally synchronized stats; one instance may
/// serve any number of concurrent batches.
class PrefetchScheduler {
 public:
  /// Per-query cap on warmed APL rows, bounding the sweep on hub cells.
  static constexpr size_t kMaxRowsPerQuery = 512;

  /// `indexes` = one entry per shard (or a single index); `cache` is the
  /// block cache the batch stats should report (nullptr = none, e.g.
  /// purely simulated setups). All pointers are non-owning and must
  /// outlive the scheduler. The indexes are fixed for the scheduler's
  /// lifetime — for an index whose shards hot-swap, use the
  /// ShardedIndex overload below.
  explicit PrefetchScheduler(std::vector<const GatIndex*> indexes,
                             const BlockCache* cache = nullptr);

  /// Live-reload-safe variant: instead of fixed index pointers, each
  /// query sweep pins every shard's *current* serving revision
  /// (`ShardedIndex::PinShard`) for the duration of its warm-up, so the
  /// scheduler keeps predicting and warming through any number of
  /// `ReloadShard` swaps without ever touching a retired mapping. Batch
  /// stats report the index's shared block cache (if any).
  explicit PrefetchScheduler(const ShardedIndex& index);

  /// Warms the predicted APL rows of one query across every index.
  void PrefetchQuery(const Query& query) const;

  /// Submits the batch sweep as `fanout` striped tasks into `group`
  /// (caller owns the barrier). `queries` must outlive the group.
  void SubmitBatch(const std::vector<Query>& queries, TaskGroup& group,
                   uint32_t fanout) const;

  /// Runs the whole sweep inline (the no-executor path).
  void PrefetchBatch(const std::vector<Query>& queries) const;

  /// The cache demand/prefetch stats feed from, or nullptr.
  const BlockCache* cache() const { return cache_; }

  struct Stats {
    uint64_t queries = 0;
    uint64_t rows_warmed = 0;
  };
  Stats stats() const {
    return {queries_.load(std::memory_order_relaxed),
            rows_warmed_.load(std::memory_order_relaxed)};
  }

 private:
  /// Warms one query's predicted rows on one index.
  uint64_t WarmIndex(const GatIndex& index, const Query& query) const;

  std::vector<const GatIndex*> indexes_;    // static mode
  const ShardedIndex* sharded_ = nullptr;   // pin-per-query mode
  const BlockCache* cache_;
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rows_warmed_{0};
};

}  // namespace gat

#endif  // GAT_STORAGE_PREFETCH_H_
