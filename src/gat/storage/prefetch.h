#ifndef GAT_STORAGE_PREFETCH_H_
#define GAT_STORAGE_PREFETCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/model/query.h"
#include "gat/storage/async_io.h"
#include "gat/storage/block_cache.h"

namespace gat {

class ShardedIndex;  // gat/shard; the pin-aware constructor below

/// Executor-task-based APL prefetch for queued batch queries — the first
/// real I/O overlap *between* the queries of a batch.
///
/// For every query point, the RAM-resident layers predict refinement's
/// disk reads for free: the leaf cell of the point's location plus the
/// point's demanded activities index straight into the ITL, whose
/// trajectory lists are exactly the candidates the first retrieval
/// rounds will hand to validation. The scheduler warms those
/// trajectories' APL posting blocks through each index's `DiskTier`
/// (`Apl::PrefetchRow`) — a no-op under the simulated tier, real
/// block-cache fills under an mmap-backed one.
///
/// Scheduling: `QueryEngine` submits the prefetch sweep as tasks into
/// the batch's own task group *before* the search tasks, so wherever the
/// pool has spare width the sweep runs concurrently with the first
/// queries and later queries find their candidate rows resident. With
/// no executor the sweep runs inline before the batch — deterministic,
/// which is what keeps `--threads 1` bench counters exact.
///
/// Thread-safety: const, internally synchronized stats; one instance may
/// serve any number of concurrent batches.
class PrefetchScheduler {
 public:
  /// Per-query cap on warmed APL rows, bounding the sweep on hub cells.
  static constexpr size_t kMaxRowsPerQuery = 512;

  /// `indexes` = one entry per shard (or a single index); `cache` is the
  /// block cache the batch stats should report (nullptr = none, e.g.
  /// purely simulated setups). All pointers are non-owning and must
  /// outlive the scheduler. The indexes are fixed for the scheduler's
  /// lifetime — for an index whose shards hot-swap, use the
  /// ShardedIndex overload below.
  explicit PrefetchScheduler(std::vector<const GatIndex*> indexes,
                             const BlockCache* cache = nullptr);

  /// Live-reload-safe variant: instead of fixed index pointers, each
  /// query sweep pins every shard's *current* serving revision
  /// (`ShardedIndex::PinShard`) for the duration of its warm-up, so the
  /// scheduler keeps predicting and warming through any number of
  /// `ReloadShard` swaps without ever touching a retired mapping. Batch
  /// stats report the index's shared block cache (if any).
  explicit PrefetchScheduler(const ShardedIndex& index);

  /// Warms the predicted APL rows of one query across every index.
  void PrefetchQuery(const Query& query) const;

  /// Submits the batch sweep as `fanout` striped tasks into `group`
  /// (caller owns the barrier). `queries` must outlive the group.
  void SubmitBatch(const std::vector<Query>& queries, TaskGroup& group,
                   uint32_t fanout) const;

  /// Runs the whole sweep inline (the no-executor path).
  void PrefetchBatch(const std::vector<Query>& queries) const;

  /// The cache demand/prefetch stats feed from, or nullptr.
  const BlockCache* cache() const { return cache_; }

  /// Feedback-driven prediction beyond the first retrieval rounds
  /// (opt-in; off = the PR 4 predictor bit for bit). The base predictor
  /// only sees round one — the leaf cell under each query point. Later
  /// rounds expand the search ring outward, and those candidate rows
  /// miss cold. With feedback enabled the scheduler also warms the ITL
  /// lists of the leaf cells within Chebyshev ring `ring()` around each
  /// query point, and `ObserveBatch` adapts that ring from measured
  /// demand misses: sustained misses per query above `miss_threshold`
  /// widen it (the predictor under-reached), misses below half the
  /// threshold shrink it (warming cells the search never visits).
  struct Feedback {
    bool enabled = false;
    /// Widest ring ever warmed (ring r adds (2r+1)^2 - 1 neighbor
    /// cells; 2 keeps the worst-case sweep ~25 cells per point).
    int max_ring = 2;
    /// Demand block misses per query that signal under-prediction.
    double miss_threshold = 4.0;
  };
  /// Not thread-safe against in-flight sweeps; configure before serving.
  void ConfigureFeedback(const Feedback& feedback) { feedback_ = feedback; }
  /// Feeds one finished batch's demand-miss delta back into the ring.
  void ObserveBatch(uint64_t demand_misses, uint64_t queries) const;
  /// Current neighbor ring (0 = base predictor only).
  int ring() const { return ring_.load(std::memory_order_relaxed); }

  struct Stats {
    uint64_t queries = 0;
    uint64_t rows_warmed = 0;
  };
  Stats stats() const {
    return {queries_.load(std::memory_order_relaxed),
            rows_warmed_.load(std::memory_order_relaxed)};
  }

 private:
  /// Warms one query's predicted rows on one index.
  uint64_t WarmIndex(const GatIndex& index, const Query& query) const;

  std::vector<const GatIndex*> indexes_;    // static mode
  const ShardedIndex* sharded_ = nullptr;   // pin-per-query mode
  const BlockCache* cache_;
  Feedback feedback_;
  mutable std::atomic<int> ring_{0};
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rows_warmed_{0};
};

/// The stage-then-search half of the yield design: where
/// `PrefetchScheduler` warms rows for the *batch* opportunistically,
/// `IoStager` stages one *query's* predicted cold blocks through
/// `AsyncDiskTier::StageExtents` and tells the caller when they are
/// resident — so `QueryEngine` can defer the query's executor slot
/// (`TaskGroup::Defer`) instead of letting the search stall a worker on
/// a demand miss. Prediction is the same RAM-resident ITL walk the
/// scheduler uses (same rows, same cap); the difference is the contract:
/// a completion callback instead of best-effort warmth.
///
/// Thread-safety: const and internally synchronized; one instance
/// serves every concurrent query of its index.
class IoStager {
 public:
  /// Non-owning; `index` must be the index served by `tier`'s snapshot
  /// (the predicted row extents index into that mapping).
  IoStager(const GatIndex* index, const AsyncDiskTier* tier);

  /// Predicts `query`'s candidate APL rows and stages their extents.
  /// Returns the number of cold blocks submitted; 0 means everything
  /// was already resident and `ready` already ran inline — otherwise
  /// `ready` fires from the I/O completion context once the staged
  /// blocks are verified and published. `ready` must be cheap and
  /// non-blocking (hand off to an executor; see TaskGroup::Deferred).
  size_t Stage(const Query& query, std::function<void()> ready) const;

  const BlockCache* cache() const { return &tier_->cache(); }
  const AsyncDiskTier& tier() const { return *tier_; }

  struct Stats {
    /// Queries whose working set was resident: searched without a hop
    /// through the I/O queue.
    uint64_t queries_inline = 0;
    /// Queries that had cold blocks staged — the searches that would
    /// have stalled a worker and instead yielded their slot.
    uint64_t queries_yielded = 0;
    uint64_t blocks_staged = 0;
  };
  Stats stats() const {
    return {queries_inline_.load(std::memory_order_relaxed),
            queries_yielded_.load(std::memory_order_relaxed),
            blocks_staged_.load(std::memory_order_relaxed)};
  }

 private:
  const GatIndex* index_;
  const AsyncDiskTier* tier_;
  mutable std::atomic<uint64_t> queries_inline_{0};
  mutable std::atomic<uint64_t> queries_yielded_{0};
  mutable std::atomic<uint64_t> blocks_staged_{0};
};

}  // namespace gat

#endif  // GAT_STORAGE_PREFETCH_H_
