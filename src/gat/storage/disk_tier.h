#ifndef GAT_STORAGE_DISK_TIER_H_
#define GAT_STORAGE_DISK_TIER_H_

#include <cstdint>

#include "gat/common/storage_tier.h"

namespace gat {

/// How the disk-resident index components (APL rows, HICL levels below
/// `h`) are physically read. The index structures (`Apl`, `Hicl`) route
/// every disk-tier access through one of these instead of bumping a bare
/// counter, so the *accounting* (one logical read per fetched object) is
/// fixed while the *mechanics* are swappable:
///
///  * `SimulatedDiskTier` (the default, and the seed behavior bit for
///    bit): everything is in RAM; a fetch only records the logical read.
///  * `MappedDiskTier` (gat/storage/mapped_snapshot.h): the object's
///    byte range lives in an mmap-ed snapshot; a fetch records the same
///    logical read, then runs the covering cache blocks through a
///    sharded LRU `BlockCache`, doing real page-granular I/O (pagefault
///    + integrity verify) on each miss.
///
/// Implementations must be thread-safe: one tier instance backs every
/// concurrent search task of its index.
class DiskTier {
 public:
  virtual ~DiskTier() = default;

  /// One logical fetch of `bytes` bytes at `offset` of the tier's
  /// backing store. `counter == nullptr` means "this query already
  /// fetched the object" (the searcher's reuse contract) — no logical
  /// read is charged and no block I/O is performed.
  virtual void Fetch(uint64_t offset, uint64_t bytes,
                     DiskAccessCounter* counter) const = 0;

  /// Warms the blocks covering [offset, offset + bytes) without
  /// charging a logical read — the prefetch path. Default: no-op (a
  /// simulated tier has nothing to warm).
  virtual void Prefetch(uint64_t offset, uint64_t bytes) const;
};

/// The seed's accounting-only tier: every byte is heap-resident, a fetch
/// is one counter bump. Stateless — all indexes without an attached real
/// tier share the process-wide instance.
class SimulatedDiskTier final : public DiskTier {
 public:
  void Fetch(uint64_t offset, uint64_t bytes,
             DiskAccessCounter* counter) const override;

  static const SimulatedDiskTier* Instance();
};

}  // namespace gat

#endif  // GAT_STORAGE_DISK_TIER_H_
