#ifndef GAT_MODEL_SERIALIZATION_H_
#define GAT_MODEL_SERIALIZATION_H_

#include <string>

#include "gat/model/dataset.h"

namespace gat {

/// Dataset persistence.
///
/// Two formats:
///  * A compact binary format ("GATD" magic, version 1) used to cache
///    generated benchmark datasets between runs.
///  * A line-oriented text format for interoperability with real check-in
///    dumps:
///        traj <user_id>
///        p <x_km> <y_km> <activity>[,<activity>...]
///    where <activity> is a free-form token interned into the vocabulary.
///    Lines starting with '#' are comments.
///
/// All functions return false on I/O or format errors (no exceptions).

/// Writes a finalized dataset to `path` in binary format.
bool SaveBinary(const Dataset& dataset, const std::string& path);

/// Loads a binary dataset; the result is finalized. Returns false on error.
bool LoadBinary(Dataset* dataset, const std::string& path);

/// Loads the text format described above and finalizes the dataset.
bool LoadText(Dataset* dataset, const std::string& path);

/// Writes the text format (activity names taken from the vocabulary when
/// present, otherwise "a<id>").
bool SaveText(const Dataset& dataset, const std::string& path);

}  // namespace gat

#endif  // GAT_MODEL_SERIALIZATION_H_
