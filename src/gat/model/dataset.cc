#include "gat/model/dataset.h"

#include <algorithm>
#include <numeric>

#include "gat/common/check.h"

namespace gat {

TrajectoryId Dataset::Add(Trajectory trajectory) {
  GAT_CHECK(!finalized_);
  trajectories_.push_back(std::move(trajectory));
  return static_cast<TrajectoryId>(trajectories_.size() - 1);
}

const Trajectory& Dataset::trajectory(TrajectoryId id) const {
  GAT_CHECK(id < trajectories_.size());
  return trajectories_[id];
}

void Dataset::Finalize() {
  if (finalized_) return;

  for (auto& tr : trajectories_) tr.NormalizeActivities();

  // Count occurrences per current activity ID. The vocabulary may contain
  // interned names that never occur; they are ranked last.
  size_t max_id = vocabulary_.size();
  for (const auto& tr : trajectories_) {
    for (const auto& p : tr.points()) {
      for (ActivityId a : p.activities) {
        max_id = std::max<size_t>(max_id, a + 1);
      }
    }
  }
  std::vector<uint64_t> counts(max_id, 0);
  for (const auto& tr : trajectories_) {
    for (const auto& p : tr.points()) {
      for (ActivityId a : p.activities) ++counts[a];
    }
  }

  // Rank activity IDs by descending frequency; ties broken by old ID so the
  // permutation is deterministic.
  std::vector<ActivityId> by_freq(max_id);
  std::iota(by_freq.begin(), by_freq.end(), 0);
  std::stable_sort(by_freq.begin(), by_freq.end(),
                   [&counts](ActivityId a, ActivityId b) {
                     return counts[a] > counts[b];
                   });
  std::vector<ActivityId> permutation(max_id);
  for (ActivityId rank = 0; rank < max_id; ++rank) {
    permutation[by_freq[rank]] = rank;
  }

  for (auto& tr : trajectories_) {
    for (auto& p : tr.mutable_points()) {
      for (auto& a : p.activities) a = permutation[a];
      std::sort(p.activities.begin(), p.activities.end());
    }
  }
  if (vocabulary_.size() == max_id) {
    vocabulary_.Permute(permutation);
  } else if (vocabulary_.size() > 0) {
    // Vocabulary smaller than the ID space would mean loaders bypassed
    // interning inconsistently; forbid the mixed mode.
    GAT_CHECK(vocabulary_.size() == max_id);
  }

  activity_frequencies_.assign(max_id, 0);
  for (ActivityId rank = 0; rank < max_id; ++rank) {
    activity_frequencies_[rank] = counts[by_freq[rank]];
  }
  // Drop trailing never-occurring activities from the frequency table.
  while (!activity_frequencies_.empty() && activity_frequencies_.back() == 0) {
    activity_frequencies_.pop_back();
  }

  bounding_box_ = Rect::Empty();
  for (const auto& tr : trajectories_) {
    for (const auto& p : tr.points()) bounding_box_.Expand(p.location);
  }

  finalized_ = true;
}

Dataset Dataset::Sample(const std::vector<TrajectoryId>& ids) const {
  GAT_CHECK(finalized_);
  Dataset out;
  for (TrajectoryId id : ids) {
    GAT_CHECK(id < trajectories_.size());
    out.Add(trajectories_[id]);  // copy
  }
  out.Finalize();
  return out;
}

std::vector<Dataset> Dataset::PartitionRoundRobin(uint32_t num_shards) const {
  GAT_CHECK(finalized_);
  GAT_CHECK(num_shards >= 1);
  std::vector<Dataset> shards(num_shards);
  for (auto& shard : shards) {
    shard.vocabulary_ = vocabulary_;
    shard.bounding_box_ = bounding_box_;
    shard.activity_frequencies_ = activity_frequencies_;
    shard.generation_ = generation_;
  }
  for (TrajectoryId t = 0; t < trajectories_.size(); ++t) {
    shards[t % num_shards].trajectories_.push_back(trajectories_[t]);  // copy
  }
  // Trajectories are already normalized and activity IDs already ranked;
  // running Finalize() would re-rank per shard, so freeze directly.
  for (auto& shard : shards) shard.finalized_ = true;
  return shards;
}

Dataset Dataset::ExtendWith(const std::vector<Trajectory>& extra) const {
  GAT_CHECK(finalized_);
  Dataset out;
  out.vocabulary_ = vocabulary_;
  out.bounding_box_ = bounding_box_;
  out.activity_frequencies_ = activity_frequencies_;
  out.generation_ = generation_ + 1;
  out.trajectories_ = trajectories_;  // copy; IDs 0..size()-1 unchanged
  const uint32_t frame_limit = activity_frame_limit();
  for (const Trajectory& tr : extra) {
    Trajectory copy = tr;
    copy.NormalizeActivities();
    for (const auto& p : copy.points()) {
      // The frame is inherited, not recomputed, so the appended data
      // must fit it: IDs inside the ranked space, points inside the
      // parent box (grids stay geometrically identical to the parent's).
      GAT_CHECK(bounding_box_.Contains(p.location));
      for (ActivityId a : p.activities) GAT_CHECK(a < frame_limit);
    }
    out.trajectories_.push_back(std::move(copy));
  }
  // Same freeze as PartitionRoundRobin: Finalize() would re-rank.
  out.finalized_ = true;
  return out;
}

}  // namespace gat
