#include "gat/model/activity_vocabulary.h"

#include "gat/common/check.h"

namespace gat {

ActivityId ActivityVocabulary::InternActivity(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const ActivityId id = static_cast<ActivityId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

ActivityId ActivityVocabulary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidId : it->second;
}

const std::string& ActivityVocabulary::Name(ActivityId id) const {
  GAT_CHECK(id < names_.size());
  return names_[id];
}

void ActivityVocabulary::Permute(const std::vector<ActivityId>& permutation) {
  GAT_CHECK(permutation.size() == names_.size());
  std::vector<std::string> new_names(names_.size());
  for (size_t old_id = 0; old_id < names_.size(); ++old_id) {
    const ActivityId new_id = permutation[old_id];
    GAT_CHECK(new_id < new_names.size());
    new_names[new_id] = std::move(names_[old_id]);
  }
  names_ = std::move(new_names);
  ids_.clear();
  for (size_t id = 0; id < names_.size(); ++id) {
    ids_.emplace(names_[id], static_cast<ActivityId>(id));
  }
}

}  // namespace gat
