#ifndef GAT_MODEL_QUERY_H_
#define GAT_MODEL_QUERY_H_

#include <vector>

#include "gat/common/types.h"
#include "gat/geo/point.h"

namespace gat {

/// One query location q with its demanded activity set q.Phi.
struct QueryPoint {
  Point location;
  std::vector<ActivityId> activities;  // sorted ascending, deduplicated
};

/// A similarity query Q = (q1, ..., qm). For OATSQ the sequence order of
/// the points is significant (Definition 7); for ATSQ it is not.
class Query {
 public:
  Query() = default;
  explicit Query(std::vector<QueryPoint> points) : points_(std::move(points)) {
    Normalize();
  }

  const std::vector<QueryPoint>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const QueryPoint& operator[](size_t i) const { return points_[i]; }

  /// Appends a query point and re-normalizes its activity list.
  void Add(QueryPoint point);

  /// Sorted, deduplicated union of all demanded activities, Q.Phi. A
  /// trajectory must contain every activity in this set to be a match
  /// (Definition 5).
  std::vector<ActivityId> ActivityUnion() const;

  /// The diameter delta(Q): maximum pairwise distance between query
  /// locations (Section VII, "Effect of delta(Q)").
  double Diameter() const;

 private:
  void Normalize();

  std::vector<QueryPoint> points_;
};

}  // namespace gat

#endif  // GAT_MODEL_QUERY_H_
