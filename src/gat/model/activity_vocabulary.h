#ifndef GAT_MODEL_ACTIVITY_VOCABULARY_H_
#define GAT_MODEL_ACTIVITY_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "gat/common/types.h"

namespace gat {

/// The pre-defined activity vocabulary `A` (Definition 1).
///
/// Maps human-readable activity names ("sushi", "jogging", ...) to dense
/// integer IDs and back. The GAT index requires IDs to be *frequency
/// ranked* — the paper sorts all activities by their occurrence frequency
/// in the whole database and assigns continuous numerical IDs (Section IV,
/// TAS construction) — so the vocabulary supports re-ranking via a
/// permutation produced by the dataset once all occurrences are counted.
class ActivityVocabulary {
 public:
  ActivityVocabulary() = default;

  /// Interns `name`, returning its ID (existing or freshly assigned).
  ActivityId InternActivity(const std::string& name);

  /// Returns the ID of `name` or kInvalidId if absent.
  ActivityId Lookup(const std::string& name) const;

  /// Name of an activity ID.
  const std::string& Name(ActivityId id) const;

  /// Number of distinct activities.
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  /// Applies a permutation: `new_id = permutation[old_id]`. The permutation
  /// must be a bijection over [0, size). Used by
  /// `Dataset::RankActivitiesByFrequency`.
  void Permute(const std::vector<ActivityId>& permutation);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ActivityId> ids_;
};

}  // namespace gat

#endif  // GAT_MODEL_ACTIVITY_VOCABULARY_H_
