#include "gat/model/trajectory.h"

namespace gat {

bool TrajectoryPoint::HasAnyActivity(
    const std::vector<ActivityId>& query_activities) const {
  // Merge-style intersection test over two sorted lists.
  auto a = activities.begin();
  auto b = query_activities.begin();
  while (a != activities.end() && b != query_activities.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

Rect Trajectory::BoundingBox() const {
  Rect box = Rect::Empty();
  for (const auto& p : points_) box.Expand(p.location);
  return box;
}

std::vector<ActivityId> Trajectory::ActivityUnion() const {
  std::vector<ActivityId> all;
  for (const auto& p : points_) {
    all.insert(all.end(), p.activities.begin(), p.activities.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

size_t Trajectory::ActivityCount() const {
  size_t count = 0;
  for (const auto& p : points_) count += p.activities.size();
  return count;
}

void Trajectory::NormalizeActivities() {
  for (auto& p : points_) {
    std::sort(p.activities.begin(), p.activities.end());
    p.activities.erase(std::unique(p.activities.begin(), p.activities.end()),
                       p.activities.end());
  }
}

}  // namespace gat
