#ifndef GAT_MODEL_DATASET_H_
#define GAT_MODEL_DATASET_H_

#include <vector>

#include "gat/common/types.h"
#include "gat/geo/rect.h"
#include "gat/model/activity_vocabulary.h"
#include "gat/model/trajectory.h"

namespace gat {

/// The activity-trajectory database `D`.
///
/// Owns all trajectories plus the activity vocabulary. Construction is a
/// two-phase protocol: `Add` trajectories, then `Finalize()`. Finalization
///   1. normalizes per-point activity sets,
///   2. counts activity occurrences over the whole database,
///   3. re-ranks activity IDs by descending frequency (ties by old ID) —
///      the prerequisite for compact TAS intervals (Section IV), and
///   4. computes the global bounding box used by the grid.
/// Indexes and searchers require a finalized dataset.
class Dataset {
 public:
  Dataset() = default;

  // Datasets are heavyweight; pass by reference, move when transferring
  // ownership.
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Adds a trajectory, returning its dense ID. Only valid before
  /// Finalize().
  TrajectoryId Add(Trajectory trajectory);

  /// Mutable access to the vocabulary (for interning names while loading).
  ActivityVocabulary& mutable_vocabulary() { return vocabulary_; }
  const ActivityVocabulary& vocabulary() const { return vocabulary_; }

  /// Freezes the dataset: normalizes, frequency-ranks activity IDs,
  /// computes the bounding box. Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }

  size_t size() const { return trajectories_.size(); }
  const Trajectory& trajectory(TrajectoryId id) const;
  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  /// Global MBR of every point in the database (valid after Finalize).
  const Rect& bounding_box() const { return bounding_box_; }

  /// Occurrence count per (frequency-ranked) activity ID; non-increasing
  /// by construction (valid after Finalize).
  const std::vector<uint64_t>& activity_frequencies() const {
    return activity_frequencies_;
  }

  /// Number of distinct activities that occur at least once.
  uint32_t num_distinct_activities() const {
    return static_cast<uint32_t>(activity_frequencies_.size());
  }

  /// Builds a new dataset from a subset of this one's trajectories
  /// (used by the Figure-7 scalability experiment, which samples the NY
  /// dataset down to 10K..50K trajectories). The subset shares no state
  /// with the source and is finalized (IDs re-ranked for the subset).
  Dataset Sample(const std::vector<TrajectoryId>& ids) const;

  /// Splits the dataset into `num_shards` finalized datasets by
  /// round-robin over trajectory IDs: global ID g lands in shard
  /// g % num_shards at local ID g / num_shards — a stable mapping that
  /// `ShardedIndex` inverts (global = local * num_shards + shard).
  ///
  /// Unlike `Sample`, partitioning preserves the parent's frame of
  /// reference: activity IDs are NOT re-ranked (every shard keeps the
  /// global frequency-ranked ID space, so queries need no per-shard
  /// translation), the vocabulary is copied, and every shard inherits the
  /// parent's bounding box (per-shard grids are geometrically identical).
  /// `activity_frequencies()` of a shard is the parent's global table —
  /// shard-local recounts would re-introduce a per-shard ID semantics.
  ///
  /// `num_shards > size()` necessarily yields empty shards (round-robin
  /// has nothing to place in them). Empty shards are valid finalized
  /// datasets carrying the parent's frame; `ShardedIndex` builds a valid
  /// empty index over them (GatIndex substitutes a fixed grid space when
  /// the inherited bounding box is itself empty) and `ShardedSearcher`
  /// contributes zero candidates from them.
  std::vector<Dataset> PartitionRoundRobin(uint32_t num_shards) const;

 private:
  std::vector<Trajectory> trajectories_;
  ActivityVocabulary vocabulary_;
  Rect bounding_box_ = Rect::Empty();
  std::vector<uint64_t> activity_frequencies_;
  bool finalized_ = false;
};

}  // namespace gat

#endif  // GAT_MODEL_DATASET_H_
