#ifndef GAT_MODEL_DATASET_H_
#define GAT_MODEL_DATASET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gat/common/types.h"
#include "gat/geo/rect.h"
#include "gat/model/activity_vocabulary.h"
#include "gat/model/trajectory.h"

namespace gat {

/// The activity-trajectory database `D`.
///
/// Owns all trajectories plus the activity vocabulary. Construction is a
/// two-phase protocol: `Add` trajectories, then `Finalize()`. Finalization
///   1. normalizes per-point activity sets,
///   2. counts activity occurrences over the whole database,
///   3. re-ranks activity IDs by descending frequency (ties by old ID) —
///      the prerequisite for compact TAS intervals (Section IV), and
///   4. computes the global bounding box used by the grid.
/// Indexes and searchers require a finalized dataset.
class Dataset {
 public:
  Dataset() = default;

  // Datasets are heavyweight; pass by reference, move when transferring
  // ownership.
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Adds a trajectory, returning its dense ID. Only valid before
  /// Finalize().
  TrajectoryId Add(Trajectory trajectory);

  /// Mutable access to the vocabulary (for interning names while loading).
  ActivityVocabulary& mutable_vocabulary() { return vocabulary_; }
  const ActivityVocabulary& vocabulary() const { return vocabulary_; }

  /// Freezes the dataset: normalizes, frequency-ranks activity IDs,
  /// computes the bounding box. Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }

  size_t size() const { return trajectories_.size(); }
  const Trajectory& trajectory(TrajectoryId id) const;
  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  /// Global MBR of every point in the database (valid after Finalize).
  const Rect& bounding_box() const { return bounding_box_; }

  /// Occurrence count per (frequency-ranked) activity ID; non-increasing
  /// by construction (valid after Finalize).
  const std::vector<uint64_t>& activity_frequencies() const {
    return activity_frequencies_;
  }

  /// Number of distinct activities that occur at least once.
  uint32_t num_distinct_activities() const {
    return static_cast<uint32_t>(activity_frequencies_.size());
  }

  /// Size of the activity-ID frame: the smallest bound such that every
  /// ID the dataset can speak is below it (interned-but-unused
  /// vocabulary entries included). Trajectories appended through
  /// `ExtendWith` must stay inside this frame.
  uint32_t activity_frame_limit() const {
    return static_cast<uint32_t>(std::max<size_t>(
        vocabulary_.size(), activity_frequencies_.size()));
  }

  /// The dataset generation this cut belongs to: 0 for a freshly
  /// finalized dataset, bumped by `ExtendWith`. Carried (not derived)
  /// metadata — the live-ingestion layer uses it to pair a delta with
  /// the base generation it complements.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t generation) { generation_ = generation; }

  /// Builds a new dataset from a subset of this one's trajectories
  /// (used by the Figure-7 scalability experiment, which samples the NY
  /// dataset down to 10K..50K trajectories). The subset shares no state
  /// with the source and is finalized (IDs re-ranked for the subset).
  Dataset Sample(const std::vector<TrajectoryId>& ids) const;

  /// Splits the dataset into `num_shards` finalized datasets by
  /// round-robin over trajectory IDs: global ID g lands in shard
  /// g % num_shards at local ID g / num_shards — a stable mapping that
  /// `ShardedIndex` inverts (global = local * num_shards + shard).
  ///
  /// Unlike `Sample`, partitioning preserves the parent's frame of
  /// reference: activity IDs are NOT re-ranked (every shard keeps the
  /// global frequency-ranked ID space, so queries need no per-shard
  /// translation), the vocabulary is copied, and every shard inherits the
  /// parent's bounding box (per-shard grids are geometrically identical).
  /// `activity_frequencies()` of a shard is the parent's global table —
  /// shard-local recounts would re-introduce a per-shard ID semantics.
  ///
  /// `num_shards > size()` necessarily yields empty shards (round-robin
  /// has nothing to place in them). Empty shards are valid finalized
  /// datasets carrying the parent's frame; `ShardedIndex` builds a valid
  /// empty index over them (GatIndex substitutes a fixed grid space when
  /// the inherited bounding box is itself empty) and `ShardedSearcher`
  /// contributes zero candidates from them.
  std::vector<Dataset> PartitionRoundRobin(uint32_t num_shards) const;

  /// Frame-preserving append: a finalized copy of this dataset with
  /// `extra` trajectories added at IDs size()..size()+extra.size()-1,
  /// at generation() + 1. This is the compaction step of live
  /// ingestion: the delta trajectories become ordinary base
  /// trajectories of the next dataset generation.
  ///
  /// Unlike Add + Finalize, the parent's frame of reference is kept
  /// verbatim — activity IDs are NOT re-ranked, the vocabulary,
  /// frequency table and bounding box are inherited unchanged — so
  /// indexes built over the extension are directly comparable (and
  /// per-shard grids geometrically identical) to indexes over the
  /// parent, exactly like `PartitionRoundRobin` slices.
  ///
  /// Each extra trajectory must already speak the parent frame: every
  /// activity ID below `activity_frame_limit()` and every point inside
  /// `bounding_box()` (the live ingest path validates both before a
  /// check-in is accepted; violating them here is a caller bug and
  /// aborts).
  Dataset ExtendWith(const std::vector<Trajectory>& extra) const;

 private:
  std::vector<Trajectory> trajectories_;
  ActivityVocabulary vocabulary_;
  Rect bounding_box_ = Rect::Empty();
  std::vector<uint64_t> activity_frequencies_;
  uint64_t generation_ = 0;
  bool finalized_ = false;
};

}  // namespace gat

#endif  // GAT_MODEL_DATASET_H_
