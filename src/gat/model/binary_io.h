#ifndef GAT_MODEL_BINARY_IO_H_
#define GAT_MODEL_BINARY_IO_H_

#include <istream>
#include <ostream>

namespace gat {

/// Raw little-endian POD stream helpers shared by the binary formats —
/// the dataset cache (model/serialization) and the index snapshot
/// (index/snapshot). Values are written in host byte order; both formats
/// are machine-local caches, not interchange formats.

template <typename T>
inline void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
inline bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace gat

#endif  // GAT_MODEL_BINARY_IO_H_
