#include "gat/model/query.h"

#include <algorithm>

namespace gat {

void Query::Add(QueryPoint point) {
  std::sort(point.activities.begin(), point.activities.end());
  point.activities.erase(
      std::unique(point.activities.begin(), point.activities.end()),
      point.activities.end());
  points_.push_back(std::move(point));
}

void Query::Normalize() {
  for (auto& q : points_) {
    std::sort(q.activities.begin(), q.activities.end());
    q.activities.erase(std::unique(q.activities.begin(), q.activities.end()),
                       q.activities.end());
  }
}

std::vector<ActivityId> Query::ActivityUnion() const {
  std::vector<ActivityId> all;
  for (const auto& q : points_) {
    all.insert(all.end(), q.activities.begin(), q.activities.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

double Query::Diameter() const {
  double best = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    for (size_t j = i + 1; j < points_.size(); ++j) {
      best = std::max(best,
                      Distance(points_[i].location, points_[j].location));
    }
  }
  return best;
}

}  // namespace gat
