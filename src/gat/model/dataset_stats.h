#ifndef GAT_MODEL_DATASET_STATS_H_
#define GAT_MODEL_DATASET_STATS_H_

#include <cstdint>
#include <string>

#include "gat/model/dataset.h"

namespace gat {

/// The dataset statistics the paper reports in Table IV, plus a few derived
/// quantities used by the analysis in Section VII-B (e.g. average
/// activities per trajectory, which explains why LA queries are slower
/// than NY despite LA having fewer trajectories).
struct DatasetStats {
  uint64_t num_trajectories = 0;
  uint64_t num_points = 0;              ///< "#venue" rows: check-in points
  uint64_t num_activity_assignments = 0;  ///< "#activity": (point, act) pairs
  uint64_t num_distinct_activities = 0;
  double avg_points_per_trajectory = 0.0;
  double avg_activities_per_point = 0.0;
  double avg_activities_per_trajectory = 0.0;
  double extent_width_km = 0.0;
  double extent_height_km = 0.0;

  /// Collects statistics from a finalized dataset.
  static DatasetStats Collect(const Dataset& dataset);

  /// Paper-style table row rendering (used by bench_table4_dataset_stats).
  std::string ToTableRow(const std::string& name) const;
};

}  // namespace gat

#endif  // GAT_MODEL_DATASET_STATS_H_
