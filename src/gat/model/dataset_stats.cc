#include "gat/model/dataset_stats.h"

#include <cstdio>

#include "gat/common/check.h"
#include "gat/util/string_util.h"

namespace gat {

DatasetStats DatasetStats::Collect(const Dataset& dataset) {
  GAT_CHECK(dataset.finalized());
  DatasetStats s;
  s.num_trajectories = dataset.size();
  for (const auto& tr : dataset.trajectories()) {
    s.num_points += tr.size();
    s.num_activity_assignments += tr.ActivityCount();
  }
  s.num_distinct_activities = dataset.num_distinct_activities();
  if (s.num_trajectories > 0) {
    s.avg_points_per_trajectory =
        static_cast<double>(s.num_points) /
        static_cast<double>(s.num_trajectories);
    s.avg_activities_per_trajectory =
        static_cast<double>(s.num_activity_assignments) /
        static_cast<double>(s.num_trajectories);
  }
  if (s.num_points > 0) {
    s.avg_activities_per_point =
        static_cast<double>(s.num_activity_assignments) /
        static_cast<double>(s.num_points);
  }
  if (!dataset.bounding_box().IsEmpty()) {
    s.extent_width_km = dataset.bounding_box().Width();
    s.extent_height_km = dataset.bounding_box().Height();
  }
  return s;
}

std::string DatasetStats::ToTableRow(const std::string& name) const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%-8s | %12s | %12s | %12s | %12s | %8.2f | %8.2f",
      name.c_str(), FormatWithCommas(num_trajectories).c_str(),
      FormatWithCommas(num_points).c_str(),
      FormatWithCommas(num_activity_assignments).c_str(),
      FormatWithCommas(num_distinct_activities).c_str(),
      avg_activities_per_trajectory, avg_activities_per_point);
  return buf;
}

}  // namespace gat
