#ifndef GAT_MODEL_TRAJECTORY_H_
#define GAT_MODEL_TRAJECTORY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gat/common/types.h"
#include "gat/geo/point.h"
#include "gat/geo/rect.h"

namespace gat {

/// One check-in: a geo-location tagged with a (possibly empty) sorted set
/// of activity IDs (Definition 2).
struct TrajectoryPoint {
  Point location;
  std::vector<ActivityId> activities;  // sorted ascending, deduplicated

  /// True if the point carries `activity`.
  bool HasActivity(ActivityId activity) const {
    return std::binary_search(activities.begin(), activities.end(), activity);
  }

  /// True if the point carries at least one of `query_activities`
  /// (both lists sorted).
  bool HasAnyActivity(const std::vector<ActivityId>& query_activities) const;
};

/// An activity trajectory Tr = (p1, ..., pn): the chronologically ordered
/// check-in history of one user (Definition 2).
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<TrajectoryPoint> points)
      : points_(std::move(points)) {}

  const std::vector<TrajectoryPoint>& points() const { return points_; }
  std::vector<TrajectoryPoint>& mutable_points() { return points_; }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TrajectoryPoint& operator[](size_t i) const { return points_[i]; }

  /// Minimum bounding rectangle of all points.
  Rect BoundingBox() const;

  /// Sorted, deduplicated union of all activities attached to any point.
  std::vector<ActivityId> ActivityUnion() const;

  /// Total number of (point, activity) assignments.
  size_t ActivityCount() const;

  /// Normalizes every point's activity list to sorted/dedup form. Called by
  /// dataset finalization; loaders may append in arbitrary order.
  void NormalizeActivities();

 private:
  std::vector<TrajectoryPoint> points_;
};

}  // namespace gat

#endif  // GAT_MODEL_TRAJECTORY_H_
