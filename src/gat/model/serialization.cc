#include "gat/model/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "gat/model/binary_io.h"

namespace gat {
namespace {

constexpr char kMagic[4] = {'G', 'A', 'T', 'D'};
constexpr uint32_t kVersion = 1;

}  // namespace

bool SaveBinary(const Dataset& dataset, const std::string& path) {
  if (!dataset.finalized()) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(dataset.size()));
  for (const auto& tr : dataset.trajectories()) {
    WritePod(out, static_cast<uint32_t>(tr.size()));
    for (const auto& p : tr.points()) {
      WritePod(out, p.location.x);
      WritePod(out, p.location.y);
      WritePod(out, static_cast<uint32_t>(p.activities.size()));
      for (ActivityId a : p.activities) WritePod(out, a);
    }
  }
  return out.good();
}

bool LoadBinary(Dataset* dataset, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) return false;
  uint64_t num_trajectories = 0;
  if (!ReadPod(in, &num_trajectories)) return false;

  for (uint64_t t = 0; t < num_trajectories; ++t) {
    uint32_t num_points = 0;
    if (!ReadPod(in, &num_points)) return false;
    std::vector<TrajectoryPoint> points(num_points);
    for (auto& p : points) {
      uint32_t num_acts = 0;
      if (!ReadPod(in, &p.location.x) || !ReadPod(in, &p.location.y) ||
          !ReadPod(in, &num_acts)) {
        return false;
      }
      p.activities.resize(num_acts);
      for (auto& a : p.activities) {
        if (!ReadPod(in, &a)) return false;
      }
    }
    dataset->Add(Trajectory(std::move(points)));
  }
  dataset->Finalize();
  return true;
}

bool LoadText(Dataset* dataset, const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;

  std::vector<TrajectoryPoint> points;
  bool have_open_trajectory = false;
  auto flush = [&]() {
    if (have_open_trajectory) {
      dataset->Add(Trajectory(std::move(points)));
      points.clear();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "traj") {
      flush();
      have_open_trajectory = true;
    } else if (tag == "p") {
      if (!have_open_trajectory) return false;
      TrajectoryPoint p;
      std::string acts;
      if (!(ls >> p.location.x >> p.location.y)) return false;
      if (ls >> acts) {
        std::istringstream as(acts);
        std::string token;
        while (std::getline(as, token, ',')) {
          if (token.empty()) continue;
          p.activities.push_back(
              dataset->mutable_vocabulary().InternActivity(token));
        }
      }
      points.push_back(std::move(p));
    } else {
      return false;
    }
  }
  flush();
  dataset->Finalize();
  return true;
}

bool SaveText(const Dataset& dataset, const std::string& path) {
  if (!dataset.finalized()) return false;
  std::ofstream out(path);
  if (!out) return false;
  out << "# gatlib text dataset: " << dataset.size() << " trajectories\n";
  const auto& vocab = dataset.vocabulary();
  for (const auto& tr : dataset.trajectories()) {
    out << "traj u\n";
    for (const auto& p : tr.points()) {
      out << "p " << p.location.x << ' ' << p.location.y;
      if (!p.activities.empty()) {
        out << ' ';
        for (size_t i = 0; i < p.activities.size(); ++i) {
          if (i != 0) out << ',';
          if (p.activities[i] < vocab.size()) {
            out << vocab.Name(p.activities[i]);
          } else {
            out << 'a' << p.activities[i];
          }
        }
      }
      out << '\n';
    }
  }
  return out.good();
}

}  // namespace gat
