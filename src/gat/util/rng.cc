#include "gat/util/rng.h"

#include <algorithm>
#include <cmath>

#include "gat/common/check.h"

namespace gat {
namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  GAT_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling would be overkill here;
  // modulo bias is negligible for bounds far below 2^64.
  return NextU64() % bound;
}

uint32_t Rng::NextU32(uint32_t bound) {
  return static_cast<uint32_t>(NextU64(bound));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller. Guard against log(0).
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

uint32_t Rng::NextPoisson(double mean) {
  GAT_DCHECK(mean >= 0.0);
  const double l = std::exp(-mean);
  uint32_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l && k < 10000);
  return k - 1;
}

std::vector<uint32_t> Rng::SampleDistinct(uint32_t n, uint32_t count) {
  GAT_CHECK(count <= n);
  // Floyd's algorithm: O(count) expected insertions.
  std::vector<uint32_t> picked;
  picked.reserve(count);
  for (uint32_t j = n - count; j < n; ++j) {
    uint32_t t = NextU32(j + 1);
    bool seen = false;
    for (uint32_t v : picked) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace gat
