#include "gat/util/stopwatch.h"

// Header-only; this translation unit exists so the build exposes a stable
// object for the target and to keep one-.cc-per-header symmetry.
