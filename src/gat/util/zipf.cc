#include "gat/util/zipf.h"

#include <algorithm>
#include <cmath>

#include "gat/common/check.h"

namespace gat {

ZipfSampler::ZipfSampler(uint32_t n, double theta) : n_(n), theta_(theta) {
  GAT_CHECK(n > 0);
  GAT_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r) + 1.0, theta);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (uint32_t r = 0; r < n; ++r) cdf_[r] /= total;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t rank) const {
  GAT_CHECK(rank < n_);
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace gat
