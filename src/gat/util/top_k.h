#ifndef GAT_UTIL_TOP_K_H_
#define GAT_UTIL_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gat/common/check.h"
#include "gat/common/types.h"

namespace gat {

/// Bounded top-k collector keyed by ascending distance.
///
/// All four searchers (GAT, IL, RT, IRT) track "the k-th smallest minimum
/// match distance found so far" (the Dkmm / Dkmom threshold of Algorithm 1);
/// this class is that shared piece: a size-k max-heap whose root is the
/// current threshold.
class TopKCollector {
 public:
  struct Entry {
    double distance;
    TrajectoryId trajectory;

    bool operator<(const Entry& other) const {
      // Max-heap on distance; ties broken by trajectory id so the heap
      // (and thus the emitted result order) is deterministic.
      if (distance != other.distance) return distance < other.distance;
      return trajectory < other.trajectory;
    }
  };

  explicit TopKCollector(size_t k) : k_(k) { GAT_CHECK(k > 0); }

  /// Offers a candidate; keeps it only if it beats the current k-th best.
  /// Returns true if the candidate entered the heap.
  bool Offer(TrajectoryId trajectory, double distance) {
    if (distance == kInfDist) return false;
    Entry e{distance, trajectory};
    if (heap_.size() < k_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    if (e < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = e;
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    return false;
  }

  /// Current k-th smallest distance, or +infinity while fewer than k
  /// results have been collected (the pruning threshold of Algorithm 1).
  double Threshold() const {
    return heap_.size() < k_ ? kInfDist : heap_.front().distance;
  }

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// Extracts results sorted by ascending distance (ties by trajectory id).
  std::vector<Entry> SortedResults() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace gat

#endif  // GAT_UTIL_TOP_K_H_
