#ifndef GAT_UTIL_STRING_UTIL_H_
#define GAT_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace gat {

/// Formats a count with thousands separators ("1,234,567") for harness
/// tables.
std::string FormatWithCommas(uint64_t value);

/// Fixed-precision double formatting ("12.34").
std::string FormatDouble(double value, int precision);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left-pads `s` with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
std::string PadRight(const std::string& s, size_t width);

}  // namespace gat

#endif  // GAT_UTIL_STRING_UTIL_H_
