#include "gat/util/string_util.h"

#include <cstdio>

namespace gat {

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace gat
