#ifndef GAT_UTIL_ZIPF_H_
#define GAT_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "gat/util/rng.h"

namespace gat {

/// Zipf-distributed sampler over ranks {0, 1, ..., n-1}.
///
/// P(rank = r) ∝ 1 / (r + 1)^theta. The check-in generator uses this to give
/// the synthetic activity vocabulary the heavy skew that real Foursquare tip
/// words exhibit; that skew is what makes the paper's frequency-ranked TAS
/// intervals compact (Section IV) and the per-activity inverted lists short
/// for rare activities.
///
/// Sampling uses a precomputed CDF and binary search: O(log n) per draw,
/// O(n) memory. This is fast enough for dataset construction (one-time) and
/// exact, which matters for reproducibility.
class ZipfSampler {
 public:
  /// `n` must be positive; `theta` >= 0 (theta = 0 degenerates to uniform).
  ZipfSampler(uint32_t n, double theta);

  /// Draws one rank in [0, n).
  uint32_t Sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double Pmf(uint32_t rank) const;

  uint32_t size() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint32_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace gat

#endif  // GAT_UTIL_ZIPF_H_
