#ifndef GAT_UTIL_STOPWATCH_H_
#define GAT_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace gat {

/// Wall-clock stopwatch used by the experiment harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gat

#endif  // GAT_UTIL_STOPWATCH_H_
