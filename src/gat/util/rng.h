#ifndef GAT_UTIL_RNG_H_
#define GAT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gat {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All data generation and query sampling in the repository flows through
/// this class so that every experiment is reproducible from a single seed.
/// We deliberately avoid std::mt19937 + std::uniform_real_distribution in
/// benchmarks: their exact output is implementation-defined across standard
/// libraries, which would make the recorded experiment tables unstable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t NextU64(uint64_t bound);

  /// Uniform in [0, bound). `bound` must be positive.
  uint32_t NextU32(uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller, no cached spare for simplicity).
  double NextGaussian();

  /// Gaussian with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Poisson-distributed count (Knuth's method; suitable for small means).
  uint32_t NextPoisson(double mean);

  /// Samples `count` distinct indices from [0, n) (Floyd's algorithm).
  /// `count` must not exceed `n`. The result is sorted ascending.
  std::vector<uint32_t> SampleDistinct(uint32_t n, uint32_t count);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextU64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace gat

#endif  // GAT_UTIL_RNG_H_
