#ifndef GAT_DATAGEN_CITY_PROFILE_H_
#define GAT_DATAGEN_CITY_PROFILE_H_

#include <cstdint>
#include <string>

namespace gat {

/// Statistical profile of a synthetic check-in city.
///
/// The paper evaluates on crawled Foursquare check-ins for Los Angeles and
/// New York (Table IV). Those crawls are not redistributable, so the
/// reproduction generates synthetic datasets with the same *shape*:
///
///   * venues clustered around urban hot-spots (Gaussian mixture),
///   * activity popularity following a Zipf law (real tip vocabularies are
///     heavily skewed — this is what makes frequency-ranked TAS intervals
///     compact and rare-activity inverted lists short),
///   * per-user trajectories of chronologically ordered check-ins around a
///     home hot-spot with occasional cross-town trips,
///   * per-check-in activity counts matching the Table-IV ratios
///     (LA: ~100 activity assignments per trajectory over ~31.5K
///     trajectories; NY: ~42 per trajectory over ~49K).
///
/// `scale` shrinks trajectory/venue/vocabulary counts proportionally so
/// benches run in minutes; ratios (the quantity that drives every pruning
/// mechanism) are preserved.
struct CityProfile {
  std::string name;

  double width_km = 60.0;
  double height_km = 50.0;
  uint32_t num_hotspots = 24;
  double hotspot_sigma_km = 2.5;

  uint32_t num_trajectories = 0;
  uint32_t num_venues = 0;
  uint32_t vocabulary_size = 0;
  double zipf_theta = 0.8;

  /// Mean check-ins per trajectory (geometric-ish length distribution).
  double mean_points_per_trajectory = 0.0;
  /// Mean activities attached per check-in (>= 0; some points stay empty).
  double mean_activities_per_point = 0.0;
  /// Probability that a check-in is near the user's home hot-spot rather
  /// than a uniformly random venue across town.
  double locality = 0.8;

  uint64_t seed = 20130408;  // ICDE'13 week

  /// Los Angeles profile of Table IV: 31,557 trajectories, 215,614 venues,
  /// 3,164,124 activity assignments, 87,567 distinct activities.
  static CityProfile LosAngeles(double scale = 1.0);

  /// New York profile of Table IV: 49,027 trajectories, 206,416 venues,
  /// 2,056,785 activity assignments, 64,649 distinct activities.
  static CityProfile NewYork(double scale = 1.0);

  /// A tiny profile for unit tests (hundreds of trajectories).
  static CityProfile Testing(uint32_t trajectories = 300, uint64_t seed = 7);
};

}  // namespace gat

#endif  // GAT_DATAGEN_CITY_PROFILE_H_
