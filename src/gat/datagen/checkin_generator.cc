#include "gat/datagen/checkin_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gat/common/check.h"
#include "gat/util/rng.h"
#include "gat/util/zipf.h"

namespace gat {

CheckinGenerator::CheckinGenerator(const CityProfile& profile)
    : profile_(profile) {
  GAT_CHECK(profile.num_trajectories > 0);
  GAT_CHECK(profile.num_venues > 0);
  GAT_CHECK(profile.vocabulary_size > 0);
  GAT_CHECK(profile.num_hotspots > 0);
  GAT_CHECK(profile.mean_points_per_trajectory >= 1.0);
}

Dataset CheckinGenerator::Generate() const {
  const CityProfile& p = profile_;
  Rng rng(p.seed);

  // 1. Hot-spot centres, with Zipf-ish popularity (downtown attracts more
  // venues and users than the suburbs).
  struct Hotspot {
    Point centre;
    double weight;
  };
  std::vector<Hotspot> hotspots(p.num_hotspots);
  double total_weight = 0.0;
  for (uint32_t h = 0; h < p.num_hotspots; ++h) {
    hotspots[h].centre = Point{rng.NextDouble(0.0, p.width_km),
                               rng.NextDouble(0.0, p.height_km)};
    hotspots[h].weight = 1.0 / std::sqrt(static_cast<double>(h) + 1.0);
    total_weight += hotspots[h].weight;
  }
  auto sample_hotspot = [&]() -> uint32_t {
    double u = rng.NextDouble() * total_weight;
    for (uint32_t h = 0; h < p.num_hotspots; ++h) {
      u -= hotspots[h].weight;
      if (u <= 0.0) return h;
    }
    return p.num_hotspots - 1;
  };
  auto clamp_to_city = [&](Point pt) {
    pt.x = std::clamp(pt.x, 0.0, p.width_km);
    pt.y = std::clamp(pt.y, 0.0, p.height_km);
    return pt;
  };

  // 2. Venues: clustered around hot-spots. venue_hotspot[v] remembers the
  // cluster for locality-aware user behaviour.
  std::vector<Point> venues(p.num_venues);
  std::vector<uint32_t> venue_hotspot(p.num_venues);
  // venues_by_hotspot[h] lists venues whose cluster is h.
  std::vector<std::vector<uint32_t>> venues_by_hotspot(p.num_hotspots);
  for (uint32_t v = 0; v < p.num_venues; ++v) {
    const uint32_t h = sample_hotspot();
    venue_hotspot[v] = h;
    venues[v] = clamp_to_city(
        Point{rng.NextGaussian(hotspots[h].centre.x, p.hotspot_sigma_km),
              rng.NextGaussian(hotspots[h].centre.y, p.hotspot_sigma_km)});
    venues_by_hotspot[h].push_back(v);
  }

  // 3. Venue activity pools. Activities are a property of the *venue*
  // (Foursquare tips describe the place), so different users checking into
  // the same venue leave overlapping activity sets. This venue-driven
  // correlation is what makes multi-activity queries satisfiable by more
  // than their source trajectory — without it, the intersection of a dozen
  // Zipf-sampled activities is empty and every top-k query degenerates.
  // Venue pools draw from the *head* of the vocabulary: recognisable
  // activity words ("coffee", "brunch") that appear at many venues. The
  // long tail (unique tokens, typos — the bulk of the 87K distinct
  // activities in Table IV) is attached as rare per-check-in extras below;
  // tail words exist in the data and in the index but rarely dominate
  // queries, matching how tip vocabularies behave.
  const uint32_t head_size = std::max<uint32_t>(64, p.vocabulary_size / 8);
  ZipfSampler activity_sampler(head_size, p.zipf_theta);
  auto sample_pool = [&](uint32_t pool_size) {
    std::vector<ActivityId> pool;
    for (uint32_t c = 0; c < pool_size * 2 && pool.size() < pool_size; ++c) {
      const ActivityId a = activity_sampler.Sample(rng);
      if (std::find(pool.begin(), pool.end(), a) == pool.end()) {
        pool.push_back(a);
      }
    }
    return pool;
  };

  // Chain brands: the same franchise appears in many neighbourhoods with an
  // identical activity pool (every branch of the same coffee chain collects
  // the same tip words). Chains give activity conjunctions city-wide,
  // spatially *dispersed* support — the regime where activity-only search
  // (IL) must refine far-away candidates while spatially-pruned search
  // stops at the nearby ones, as in the paper's evaluation.
  constexpr uint32_t kNumChains = 16;
  constexpr double kChainFraction = 0.3;
  std::vector<std::vector<ActivityId>> chain_pool(kNumChains);
  for (auto& pool : chain_pool) {
    pool = sample_pool(1 + rng.NextPoisson(2.0 * p.mean_activities_per_point));
  }

  std::vector<std::vector<ActivityId>> venue_pool(p.num_venues);
  for (uint32_t v = 0; v < p.num_venues; ++v) {
    if (rng.NextBool(kChainFraction)) {
      venue_pool[v] = chain_pool[rng.NextU32(kNumChains)];
    } else {
      venue_pool[v] =
          sample_pool(1 + rng.NextPoisson(2.0 * p.mean_activities_per_point));
    }
  }

  // 4. Behavioural archetypes. Real check-in populations contain cohorts
  // of "regulars": groups of users frequenting the same small venue
  // repertoire (same office block, same gym, same bars). Queries sampled
  // from one member of a cohort are satisfied by the rest of the cohort —
  // this is the correlation that gives the paper's top-k queries (k up to
  // 25) enough matching trajectories. Independent per-user venue choices
  // cannot produce it: the conjunction of ~12 sampled activities has
  // near-zero support under independence.
  struct Archetype {
    std::vector<uint32_t> repertoire;  // shared venue list
  };
  const uint32_t num_archetypes =
      std::max<uint32_t>(4, p.num_trajectories / 120);
  // Repertoire size scales with trajectory length so that one user's
  // check-ins revisit each venue a few times — revisits are what make a
  // cohort member's recorded activities cover its repertoire's pools.
  const uint32_t home_venues = std::max<uint32_t>(
      3, static_cast<uint32_t>(p.mean_points_per_trajectory / 5.0));
  const uint32_t away_venues = std::max<uint32_t>(1, home_venues / 3);
  std::vector<Archetype> archetypes(num_archetypes);
  for (auto& arche : archetypes) {
    const uint32_t home = sample_hotspot();
    const uint32_t away = sample_hotspot();
    auto pick_from = [&](uint32_t hotspot) -> uint32_t {
      const auto& local = venues_by_hotspot[hotspot];
      if (local.empty()) return rng.NextU32(p.num_venues);
      // Venue popularity within a neighbourhood is heavily skewed (the
      // coffee chain vs the dentist).
      const double u = std::pow(rng.NextDouble(), 4.0);
      return local[static_cast<uint32_t>(u * static_cast<double>(local.size()))];
    };
    for (uint32_t v = 0; v < home_venues; ++v) {
      arche.repertoire.push_back(pick_from(home));
    }
    for (uint32_t v = 0; v < away_venues; ++v) {
      arche.repertoire.push_back(pick_from(away));
    }
  }

  // Geometric point count with the profile mean (>= 1 point).
  const double continue_prob =
      1.0 - 1.0 / std::max(1.0, p.mean_points_per_trajectory);

  Dataset dataset;
  for (uint32_t u = 0; u < p.num_trajectories; ++u) {
    const Archetype& arche = archetypes[rng.NextU32(num_archetypes)];
    std::vector<TrajectoryPoint> points;
    do {
      TrajectoryPoint tp;
      uint32_t venue;
      if (rng.NextBool(p.locality)) {
        // A regular visit within the cohort's repertoire.
        venue = arche.repertoire[rng.NextU32(
            static_cast<uint32_t>(arche.repertoire.size()))];
      } else {
        venue = rng.NextU32(p.num_venues);  // rare out-of-pattern check-in
      }
      // Phone-GPS scatter (~60 m): check-ins at the same venue do not
      // coincide exactly, so k-th match distances grow smoothly with k.
      tp.location = clamp_to_city(
          Point{rng.NextGaussian(venues[venue].x, 0.06),
                rng.NextGaussian(venues[venue].y, 0.06)});
      // The check-in records a subset of the venue's activity pool
      // (0 allowed — tip-less check-ins are common).
      const auto& pool = venue_pool[venue];
      const uint32_t count = std::min<uint32_t>(
          rng.NextPoisson(p.mean_activities_per_point),
          static_cast<uint32_t>(pool.size()));
      if (count == pool.size()) {
        tp.activities = pool;
      } else if (count > 0) {
        for (uint32_t idx :
             rng.SampleDistinct(static_cast<uint32_t>(pool.size()), count)) {
          tp.activities.push_back(pool[idx]);
        }
      }
      // Rare tail word (unique token in the tip). Keeps the distinct-
      // activity count of Table IV without poisoning query conjunctions.
      if (p.vocabulary_size > head_size && rng.NextBool(0.15)) {
        tp.activities.push_back(
            head_size + rng.NextU32(p.vocabulary_size - head_size));
      }
      points.push_back(std::move(tp));
    } while (rng.NextBool(continue_prob));
    dataset.Add(Trajectory(std::move(points)));
  }
  dataset.Finalize();
  return dataset;
}

Dataset GenerateCity(const CityProfile& profile) {
  return CheckinGenerator(profile).Generate();
}

}  // namespace gat
