#include "gat/datagen/query_generator.h"

#include <algorithm>
#include <cmath>

#include "gat/common/check.h"

namespace gat {

QueryGenerator::QueryGenerator(const Dataset& dataset,
                               const QueryWorkloadParams& params)
    : dataset_(dataset), params_(params), rng_(params.seed) {
  GAT_CHECK(dataset.finalized());
  GAT_CHECK(params.num_query_points >= 1);
  if (params_.min_activity_support == 0) {
    params_.min_activity_support =
        std::max<uint64_t>(10, dataset.size());
  }
  // A trajectory is eligible when it has at least |Q| points that carry at
  // least one activity.
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    uint32_t active_points = 0;
    for (const auto& pt : tr.points()) {
      if (!pt.activities.empty()) ++active_points;
    }
    if (active_points >= params.num_query_points) eligible_.push_back(t);
  }
  GAT_CHECK(!eligible_.empty());
}

Query QueryGenerator::TryOnce(bool& diameter_ok) {
  const TrajectoryId t =
      eligible_[rng_.NextU32(static_cast<uint32_t>(eligible_.size()))];
  const auto& tr = dataset_.trajectory(t);

  const auto& freqs = dataset_.activity_frequencies();
  auto supported = [&](ActivityId a) {
    return a < freqs.size() && freqs[a] >= params_.min_activity_support;
  };
  auto supported_count = [&](const TrajectoryPoint& pt) {
    uint32_t n = 0;
    for (ActivityId a : pt.activities) {
      if (supported(a)) ++n;
    }
    return n;
  };

  // Candidate query locations: points carrying enough *recognisable*
  // activities themselves. Demanding activities the location does not
  // offer would make even the source trajectory a poor match and inflate
  // every match distance. Prefer points satisfying the full |q.Phi|
  // budget; degrade gracefully to >= 1 supported activity, then to any
  // activity-bearing point (degenerate datasets).
  std::vector<PointIndex> active;
  for (PointIndex i = 0; i < tr.size(); ++i) {
    if (supported_count(tr[i]) >= params_.activities_per_point) {
      active.push_back(i);
    }
  }
  if (active.size() < params_.num_query_points) {
    active.clear();
    for (PointIndex i = 0; i < tr.size(); ++i) {
      if (supported_count(tr[i]) >= 1) active.push_back(i);
    }
  }
  if (active.size() < params_.num_query_points) {
    active.clear();
    for (PointIndex i = 0; i < tr.size(); ++i) {
      if (!tr[i].activities.empty()) active.push_back(i);
    }
  }
  GAT_CHECK(active.size() >= params_.num_query_points);

  // Sample |Q| distinct locations, kept in trajectory order.
  const auto picks = rng_.SampleDistinct(
      static_cast<uint32_t>(active.size()), params_.num_query_points);

  std::vector<QueryPoint> qpoints;
  qpoints.reserve(picks.size());
  for (uint32_t pick : picks) {
    const PointIndex idx = active[pick];
    QueryPoint qp;
    qp.location = tr[idx].location;
    // The point's most recognisable activities first (IDs are frequency
    // ranked: ascending ID = descending global frequency — users query
    // "coffee", not the unique token of a single tip).
    std::vector<ActivityId> pool;
    for (ActivityId a : tr[idx].activities) {
      if (supported(a)) pool.push_back(a);
    }
    if (pool.empty()) pool = tr[idx].activities;
    const uint32_t take = std::min<uint32_t>(
        params_.activities_per_point, static_cast<uint32_t>(pool.size()));
    qp.activities.assign(pool.begin(), pool.begin() + take);
    qpoints.push_back(std::move(qp));
  }

  Query query(std::move(qpoints));
  const double diameter = query.Diameter();
  diameter_ok =
      params_.num_query_points < 2 ||
      std::abs(diameter - params_.diameter_km) <=
          params_.diameter_km * params_.diameter_tolerance;
  return query;
}

Query QueryGenerator::Next() {
  constexpr int kMaxAttempts = 200;
  Query best;
  double best_error = kInfDist;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    bool ok = false;
    Query q = TryOnce(ok);
    if (ok) return q;
    const double err = std::abs(q.Diameter() - params_.diameter_km);
    if (err < best_error) {
      best_error = err;
      best = std::move(q);
    }
  }
  // Fall back: rescale the best attempt about its centroid so the diameter
  // matches the requested delta(Q) exactly (substitution documented in the
  // header; activities are untouched so match semantics are unchanged).
  const double diameter = best.Diameter();
  if (diameter <= 0.0 || params_.num_query_points < 2) return best;
  const double factor = params_.diameter_km / diameter;
  double cx = 0.0;
  double cy = 0.0;
  for (const auto& qp : best.points()) {
    cx += qp.location.x;
    cy += qp.location.y;
  }
  cx /= static_cast<double>(best.size());
  cy /= static_cast<double>(best.size());
  std::vector<QueryPoint> scaled = best.points();
  for (auto& qp : scaled) {
    qp.location.x = cx + (qp.location.x - cx) * factor;
    qp.location.y = cy + (qp.location.y - cy) * factor;
  }
  return Query(std::move(scaled));
}

std::vector<Query> QueryGenerator::Workload() {
  std::vector<Query> out;
  out.reserve(params_.num_queries);
  for (uint32_t i = 0; i < params_.num_queries; ++i) out.push_back(Next());
  return out;
}

}  // namespace gat
