#ifndef GAT_DATAGEN_CHECKIN_GENERATOR_H_
#define GAT_DATAGEN_CHECKIN_GENERATOR_H_

#include "gat/datagen/city_profile.h"
#include "gat/model/dataset.h"

namespace gat {

/// Synthesizes a finalized activity-trajectory dataset from a CityProfile.
///
/// Pipeline (mirrors how the paper assembled its data from raw check-ins,
/// Section VII-A):
///  1. scatter hot-spot centres across the city extent;
///  2. place venues by sampling a hot-spot (popularity-weighted) plus
///     Gaussian noise — venue density is spatially clustered;
///  3. for each user, pick a home hot-spot, then emit a chronological
///     sequence of check-ins: with probability `locality` at a venue near
///     home, otherwise anywhere in town;
///  4. attach to every check-in a Zipf-sampled set of activities (count
///     geometric around the profile mean; may be empty — Definition 2
///     explicitly allows activity-less points).
///
/// The output is deterministic in the profile seed.
class CheckinGenerator {
 public:
  explicit CheckinGenerator(const CityProfile& profile);

  /// Generates and finalizes the dataset.
  Dataset Generate() const;

 private:
  CityProfile profile_;
};

/// Convenience: generate a dataset for a profile in one call.
Dataset GenerateCity(const CityProfile& profile);

}  // namespace gat

#endif  // GAT_DATAGEN_CHECKIN_GENERATOR_H_
