#include "gat/datagen/city_profile.h"

#include <algorithm>
#include <cmath>

namespace gat {

namespace {

uint32_t Scaled(uint32_t value, double scale, uint32_t floor_value) {
  return std::max(floor_value,
                  static_cast<uint32_t>(std::lround(value * scale)));
}

}  // namespace

CityProfile CityProfile::LosAngeles(double scale) {
  CityProfile p;
  p.name = "LA";
  p.width_km = 70.0;
  p.height_km = 55.0;
  p.num_hotspots = 96;
  p.hotspot_sigma_km = 1.6;
  p.num_trajectories = Scaled(31557, scale, 50);
  p.num_venues = Scaled(215614, scale, 500);
  p.vocabulary_size = Scaled(87567, scale, 200);
  // Table IV: 3,164,124 assignments / 31,557 trajectories ~= 100 per
  // trajectory; venues per trajectory derived from check-in volume:
  // LA trajectories are long and activity-dense (the paper notes LA
  // "contains more activities averagely", which slows every method down).
  p.mean_points_per_trajectory = 34.0;
  p.mean_activities_per_point = 3.0;
  p.zipf_theta = 0.85;
  p.locality = 0.95;
  p.seed = 20130001;
  return p;
}

CityProfile CityProfile::NewYork(double scale) {
  CityProfile p;
  p.name = "NY";
  p.width_km = 55.0;
  p.height_km = 60.0;
  p.num_hotspots = 120;
  p.hotspot_sigma_km = 1.2;
  p.num_trajectories = Scaled(49027, scale, 50);
  p.num_venues = Scaled(206416, scale, 500);
  p.vocabulary_size = Scaled(64649, scale, 200);
  // Table IV: 2,056,785 / 49,027 ~= 42 assignments per trajectory.
  p.mean_points_per_trajectory = 21.0;
  p.mean_activities_per_point = 2.0;
  p.zipf_theta = 0.85;
  p.locality = 0.95;
  p.seed = 20130002;
  return p;
}

CityProfile CityProfile::Testing(uint32_t trajectories, uint64_t seed) {
  CityProfile p;
  p.name = "TEST";
  p.width_km = 20.0;
  p.height_km = 20.0;
  p.num_hotspots = 16;
  p.hotspot_sigma_km = 1.5;
  p.num_trajectories = trajectories;
  p.num_venues = std::max<uint32_t>(100, trajectories * 4);
  p.vocabulary_size = 64;
  p.mean_points_per_trajectory = 12.0;
  p.mean_activities_per_point = 2.0;
  p.zipf_theta = 0.7;
  p.locality = 0.9;
  p.seed = seed;
  return p;
}

}  // namespace gat
