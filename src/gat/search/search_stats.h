#ifndef GAT_SEARCH_SEARCH_STATS_H_
#define GAT_SEARCH_SEARCH_STATS_H_

#include <cstdint>
#include <string>

namespace gat {

/// Counters shared by all four searchers (GAT, IL, RT, IRT) so that the
/// experiment harness and the ablation benches can explain *why* one method
/// beats another, not just report wall-clock.
struct SearchStats {
  /// Trajectories handed to the validation pipeline.
  uint64_t candidates_retrieved = 0;
  /// Candidates rejected by the TAS sketch (GAT only).
  uint64_t tas_pruned = 0;
  /// Candidates rejected by exact APL / activity containment check.
  uint64_t activity_rejected = 0;
  /// Candidates rejected by the matching-index-bound order check (OATSQ).
  uint64_t mib_rejected = 0;
  /// Full distance evaluations (Dmm or Dmom) performed.
  uint64_t distance_computations = 0;
  /// Grid cells / R-tree nodes popped from the best-first queue.
  uint64_t nodes_popped = 0;
  /// Entries pushed onto the best-first queue.
  uint64_t heap_pushes = 0;
  /// Retrieval rounds of Algorithm 1 (GAT) / stream advances (RT, IRT).
  uint64_t rounds = 0;
  /// Logical disk reads (APL fetches, low HICL levels). Identical under
  /// the simulated and the mmap-backed DiskTier — the tier changes what
  /// a read physically does, not how many the algorithm performs.
  uint64_t disk_reads = 0;
  /// Block-cache lookups the logical reads decomposed into, split into
  /// hits and misses. Only a block-cached tier (gat/storage) populates
  /// these; under the simulated default both stay 0. `blocks_read` is
  /// the misses — the page-granular reads that did real I/O.
  uint64_t block_hits = 0;
  uint64_t blocks_read = 0;
  /// Serving-revision pins acquired during the query (live-reload
  /// epoch guard): a ShardedSearcher pins each shard's current
  /// revision once per visit, so this is a deterministic
  /// `num_shards` per query — and 0 for searchers that serve a fixed
  /// index. The counter that proves the hot-swap path was exercised
  /// without perturbing any work counter.
  uint64_t index_pins = 0;
  /// Task-boundary deadline checks that found the request's budget
  /// already spent and skipped the work behind them: one per query the
  /// engine refused to start, one per shard sweep a fan-out searcher
  /// refused to run. 0 for requests without a deadline (every
  /// pre-serving workload). Deterministic only when expiry is — i.e.
  /// under a virtual-time clock that is frozen while tasks run; under a
  /// wall clock the count depends on scheduling.
  uint64_t deadline_skips = 0;
  /// Simulated disk reads on the query's *critical path*. 0 means "same
  /// as disk_reads" (every sequential searcher leaves it unset); a
  /// fan-out searcher that overlaps per-shard I/O across executor tasks
  /// sets it to the slowest parallel branch. Read through
  /// CriticalDiskReads(), never directly.
  uint64_t critical_disk_reads = 0;
  /// Wall-clock of the whole query.
  double elapsed_ms = 0.0;

  /// Disk reads a parallel execution cannot overlap away: `disk_reads`
  /// for sequential searchers, the max over sibling branches for
  /// fan-out searchers. The disk-model input of the bench protocol's
  /// per-query latency percentiles.
  uint64_t CriticalDiskReads() const {
    return critical_disk_reads != 0 ? critical_disk_reads : disk_reads;
  }

  void Reset() { *this = SearchStats{}; }

  /// One-line human-readable rendering.
  std::string ToString() const;

  /// Accumulates counters (for averaging across a query workload).
  SearchStats& operator+=(const SearchStats& other);
};

}  // namespace gat

#endif  // GAT_SEARCH_SEARCH_STATS_H_
