#include "gat/search/search_stats.h"

#include <cstdio>

namespace gat {

std::string SearchStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "cand=%llu tas_pruned=%llu act_rej=%llu mib_rej=%llu "
                "dist=%llu popped=%llu pushed=%llu rounds=%llu disk=%llu "
                "%.3fms",
                static_cast<unsigned long long>(candidates_retrieved),
                static_cast<unsigned long long>(tas_pruned),
                static_cast<unsigned long long>(activity_rejected),
                static_cast<unsigned long long>(mib_rejected),
                static_cast<unsigned long long>(distance_computations),
                static_cast<unsigned long long>(nodes_popped),
                static_cast<unsigned long long>(heap_pushes),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(disk_reads), elapsed_ms);
  return buf;
}

SearchStats& SearchStats::operator+=(const SearchStats& other) {
  candidates_retrieved += other.candidates_retrieved;
  tas_pruned += other.tas_pruned;
  activity_rejected += other.activity_rejected;
  mib_rejected += other.mib_rejected;
  distance_computations += other.distance_computations;
  nodes_popped += other.nodes_popped;
  heap_pushes += other.heap_pushes;
  rounds += other.rounds;
  disk_reads += other.disk_reads;
  elapsed_ms += other.elapsed_ms;
  return *this;
}

}  // namespace gat
