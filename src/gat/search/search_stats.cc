#include "gat/search/search_stats.h"

#include <cstdio>

namespace gat {

std::string SearchStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "cand=%llu tas_pruned=%llu act_rej=%llu mib_rej=%llu "
                "dist=%llu popped=%llu pushed=%llu rounds=%llu disk=%llu "
                "%.3fms",
                static_cast<unsigned long long>(candidates_retrieved),
                static_cast<unsigned long long>(tas_pruned),
                static_cast<unsigned long long>(activity_rejected),
                static_cast<unsigned long long>(mib_rejected),
                static_cast<unsigned long long>(distance_computations),
                static_cast<unsigned long long>(nodes_popped),
                static_cast<unsigned long long>(heap_pushes),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(disk_reads), elapsed_ms);
  std::string out = buf;
  if (index_pins > 0) {
    std::snprintf(buf, sizeof(buf), " pins=%llu",
                  static_cast<unsigned long long>(index_pins));
    out += buf;
  }
  if (deadline_skips > 0) {
    std::snprintf(buf, sizeof(buf), " dl_skips=%llu",
                  static_cast<unsigned long long>(deadline_skips));
    out += buf;
  }
  if (block_hits + blocks_read > 0) {
    std::snprintf(buf, sizeof(buf), " blocks(hit/miss)=%llu/%llu",
                  static_cast<unsigned long long>(block_hits),
                  static_cast<unsigned long long>(blocks_read));
    out += buf;
  }
  return out;
}

SearchStats& SearchStats::operator+=(const SearchStats& other) {
  // Resolve both critical paths before any counter mutates: the sentinel
  // (critical == 0 means "same as disk_reads") must read the pre-merge
  // disk_reads of each side.
  const uint64_t combined_critical =
      CriticalDiskReads() + other.CriticalDiskReads();
  candidates_retrieved += other.candidates_retrieved;
  tas_pruned += other.tas_pruned;
  activity_rejected += other.activity_rejected;
  mib_rejected += other.mib_rejected;
  distance_computations += other.distance_computations;
  nodes_popped += other.nodes_popped;
  heap_pushes += other.heap_pushes;
  rounds += other.rounds;
  disk_reads += other.disk_reads;
  block_hits += other.block_hits;
  blocks_read += other.blocks_read;
  index_pins += other.index_pins;
  deadline_skips += other.deadline_skips;
  // Sequential composition: critical paths add. Fan-out searchers
  // overwrite the sum with their max-over-branches after merging.
  critical_disk_reads = combined_critical;
  elapsed_ms += other.elapsed_ms;
  return *this;
}

}  // namespace gat
