#ifndef GAT_SEARCH_GAT_SEARCH_H_
#define GAT_SEARCH_GAT_SEARCH_H_

#include <cstdint>

#include "gat/core/result_set.h"
#include "gat/core/searcher.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset.h"
#include "gat/model/query.h"
#include "gat/search/search_stats.h"

namespace gat {

/// Knobs of the GAT search algorithm (Section V).
struct GatSearchParams {
  /// Candidate batch size lambda of Algorithm 1: each retrieval round pops
  /// grid cells until at least this many new candidate trajectories are
  /// found (or the queue drains).
  uint32_t lambda = 64;

  /// The `m` of Algorithm 2: how many nearest unvisited cells per query
  /// point participate in the virtual-trajectory lower bound.
  uint32_t nearest_cells = 10;

  /// When false, the lower bound degrades to the naive PQ-head bound (the
  /// "straightforward approach" the paper rejects in Section V-B). Exposed
  /// for the lower-bound ablation bench.
  bool use_tight_lower_bound = true;

  /// When false, candidates skip the TAS sketch check and go straight to
  /// the exact APL validation. Exposed for the TAS ablation bench.
  bool use_tas = true;
};

/// Top-k ATSQ / OATSQ search over a GAT index: the best-first candidate
/// retrieval + validation + refinement loop of Algorithm 1, with the
/// Algorithm-2 tighter lower bound for unseen trajectories.
///
/// Thread-safety: `Search`/`Atsq`/`Oatsq` are const and concurrently
/// callable on one instance. All per-query mutation lives in the private
/// `State` object constructed on the caller's stack; `dataset_`, `index_`
/// and `params_` are read-only after construction (see the Searcher
/// threading contract).
class GatSearcher : public Searcher {
 public:
  /// Both `dataset` and `index` must outlive the searcher.
  GatSearcher(const Dataset& dataset, const GatIndex& index,
              const GatSearchParams& params = {});

  /// Activity Trajectory Similarity Query: top-k by Dmm (Section II).
  ResultList Atsq(const Query& query, size_t k,
                  SearchStats* stats = nullptr) const;

  /// Order-sensitive ATSQ: top-k by Dmom (Section VI).
  ResultList Oatsq(const Query& query, size_t k,
                   SearchStats* stats = nullptr) const;

  /// Unified entry point. `context` is accepted for interface parity but
  /// not checked mid-query: one GAT search is a single sequential task,
  /// and the engine's per-query boundary check already gates it.
  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "GAT"; }

  const GatSearchParams& params() const { return params_; }

 private:
  struct State;

  void RetrieveCandidates(State& state) const;
  double ComputeLowerBound(State& state) const;
  void ProcessCandidate(State& state, TrajectoryId t) const;
  double DmmFromApl(const Query& query, TrajectoryId t,
                    DiskAccessCounter* disk) const;
  bool MibValidFromApl(const Query& query, TrajectoryId t,
                       DiskAccessCounter* disk) const;

  const Dataset& dataset_;
  const GatIndex& index_;
  GatSearchParams params_;
};

}  // namespace gat

#endif  // GAT_SEARCH_GAT_SEARCH_H_
