#include "gat/search/gat_search.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gat/common/check.h"
#include "gat/core/match.h"
#include "gat/core/order_match.h"
#include "gat/core/point_match.h"
#include "gat/util/stopwatch.h"
#include "gat/util/top_k.h"

namespace gat {

namespace {

/// Entry of the candidate-retrieval priority queue: (mdist, cellID, q)
/// of Section V-A. Min-heap on mdist; ties broken by level/code/query for
/// determinism.
struct PqEntry {
  double mdist;
  int level;
  uint32_t code;
  uint32_t query_idx;
};

struct PqGreater {
  bool operator()(const PqEntry& a, const PqEntry& b) const {
    if (a.mdist != b.mdist) return a.mdist > b.mdist;
    if (a.level != b.level) return a.level > b.level;
    if (a.code != b.code) return a.code > b.code;
    return a.query_idx > b.query_idx;
  }
};

/// Member of cellsn(q): an unvisited cell ordered by mdist (Section V-B).
struct CellRef {
  double mdist;
  int level;
  uint32_t code;

  bool operator<(const CellRef& other) const {
    if (mdist != other.mdist) return mdist < other.mdist;
    if (level != other.level) return level < other.level;
    return code < other.code;
  }
};

}  // namespace

/// Per-query mutable search state (the searcher itself is const / reusable
/// across queries and threads).
struct GatSearcher::State {
  const Query& query;
  size_t k;
  QueryKind kind;
  SearchStats& stats;

  std::vector<ActivityId> query_union;
  std::priority_queue<PqEntry, std::vector<PqEntry>, PqGreater> pq;
  std::vector<std::set<CellRef>> cells_n;  // cellsn(q_i), all unvisited cells
  std::vector<char> seen;
  std::vector<TrajectoryId> batch;
  TopKCollector collector;
  DiskAccessCounter disk;
  /// Disk-tier HICL inverted cell lists already fetched this query, keyed
  /// by (activity << 4) | level. A list is fetched through the disk tier
  /// (one logical read, block I/O under an mmap-backed tier) on first use
  /// and is then memory-resident for the rest of the query.
  std::unordered_set<uint64_t> fetched_hicl_lists;
  bool exhausted = false;

  void ChargeHiclList(const Hicl& hicl, ActivityId a, int level) {
    if (level <= hicl.memory_levels()) return;
    const uint64_t key = (static_cast<uint64_t>(a) << 4) |
                         static_cast<uint64_t>(level);
    if (fetched_hicl_lists.insert(key).second) {
      if (a < hicl.num_activities()) {
        (void)hicl.CellsAt(a, level, &disk);
      } else {
        disk.RecordRead();  // fruitless fetch of an absent list
      }
    }
  }

  State(const Query& q, size_t k_in, QueryKind kind_in, SearchStats& s,
        size_t dataset_size)
      : query(q),
        k(k_in),
        kind(kind_in),
        stats(s),
        query_union(q.ActivityUnion()),
        cells_n(q.size()),
        seen(dataset_size, 0),
        collector(k_in) {}
};

GatSearcher::GatSearcher(const Dataset& dataset, const GatIndex& index,
                         const GatSearchParams& params)
    : dataset_(dataset), index_(index), params_(params) {
  GAT_CHECK(dataset.finalized());
  GAT_CHECK(params.lambda > 0);
  GAT_CHECK(params.nearest_cells > 0);
}

ResultList GatSearcher::Atsq(const Query& query, size_t k,
                             SearchStats* stats) const {
  return Search(query, k, QueryKind::kAtsq, stats);
}

ResultList GatSearcher::Oatsq(const Query& query, size_t k,
                              SearchStats* stats) const {
  return Search(query, k, QueryKind::kOatsq, stats);
}

ResultList GatSearcher::Search(const Query& query, size_t k, QueryKind kind,
                               SearchStats* stats,
                               const QueryContext* /*context*/) const {
  SearchStats local_stats;
  SearchStats& st = stats != nullptr ? *stats : local_stats;
  st.Reset();
  Stopwatch timer;

  if (query.empty() || k == 0) return {};

  State state(query, k, kind, st, dataset_.size());

  if (state.query_union.empty()) {
    // Degenerate query: every q.Phi is empty, so every trajectory matches
    // with distance 0 (Dmm = Dmom = 0). Return the k smallest IDs.
    ResultList out;
    for (TrajectoryId t = 0; t < dataset_.size() && out.size() < k; ++t) {
      out.push_back(SearchResult{t, 0.0});
    }
    st.elapsed_ms = timer.ElapsedMillis();
    return out;
  }

  // Seed the queue with the cells of the highest HICL level that contain
  // any activity demanded at each query point (Section V-A).
  const int top_level = 1;
  for (uint32_t qi = 0; qi < query.size(); ++qi) {
    const auto& acts = query[qi].activities;
    if (acts.empty()) continue;
    for (uint32_t code :
         index_.hicl().CellsWithAny(acts, top_level, nullptr)) {
      const double mdist =
          index_.grid().MinDistToCell(query[qi].location, top_level, code);
      state.pq.push(PqEntry{mdist, top_level, code, qi});
      state.cells_n[qi].insert(CellRef{mdist, top_level, code});
      ++st.heap_pushes;
    }
  }

  // Algorithm 1 main loop.
  const bool trace = std::getenv("GAT_TRACE") != nullptr;
  while (true) {
    ++st.rounds;
    RetrieveCandidates(state);
    const double dlb = ComputeLowerBound(state);
    for (TrajectoryId t : state.batch) ProcessCandidate(state, t);
    state.batch.clear();
    if (trace) {
      std::fprintf(stderr,
                   "round=%llu dlb=%.3f thresh=%.3f results=%zu cand=%llu\n",
                   static_cast<unsigned long long>(st.rounds), dlb,
                   state.collector.Threshold(), state.collector.size(),
                   static_cast<unsigned long long>(st.candidates_retrieved));
    }
    // Termination: all unseen trajectories are provably worse than the
    // current k-th result (line 9-10), or nothing is left to retrieve.
    if (state.collector.Threshold() < dlb) break;
    if (state.exhausted) break;
  }

  st.disk_reads = state.disk.Reads();
  st.block_hits = state.disk.BlockHits();
  st.blocks_read = state.disk.BlocksRead();
  st.elapsed_ms = timer.ElapsedMillis();
  return ToResultList(state.collector);
}

void GatSearcher::RetrieveCandidates(State& state) const {
  const int depth = index_.grid().depth();
  std::vector<uint32_t> children;
  while (state.batch.size() < params_.lambda && !state.pq.empty()) {
    const PqEntry e = state.pq.top();
    state.pq.pop();
    ++state.stats.nodes_popped;
    state.cells_n[e.query_idx].erase(CellRef{e.mdist, e.level, e.code});
    const auto& acts = state.query[e.query_idx].activities;

    if (e.level < depth) {
      // Expand: children that contain at least one demanded activity; all
      // other children are pruned automatically (Section V-A). Descending
      // into a disk-tier level fetches each demanded activity's inverted
      // cell list once per query.
      for (ActivityId a : acts) {
        state.ChargeHiclList(index_.hicl(), a, e.level + 1);
      }
      children.clear();
      index_.hicl().ChildrenWithAny(acts, e.level, e.code, &children,
                                    nullptr);
      for (uint32_t child : children) {
        const double mdist = index_.grid().MinDistToCell(
            state.query[e.query_idx].location, e.level + 1, child);
        state.pq.push(PqEntry{mdist, e.level + 1, child, e.query_idx});
        state.cells_n[e.query_idx].insert(
            CellRef{mdist, e.level + 1, child});
        ++state.stats.heap_pushes;
      }
    } else {
      // Leaf: pull the inverted trajectory lists for each demanded
      // activity into the candidate set.
      for (ActivityId a : acts) {
        for (TrajectoryId t : index_.itl().Trajectories(e.code, a)) {
          if (!state.seen[t]) {
            state.seen[t] = 1;
            state.batch.push_back(t);
          }
        }
      }
    }
  }
  if (state.pq.empty()) state.exhausted = true;
}

double GatSearcher::ComputeLowerBound(State& state) const {
  if (state.exhausted) return kInfDist;  // nothing unseen remains

  if (!params_.use_tight_lower_bound) {
    // Naive bound the paper rejects: the PQ head mdist, once per query
    // point (sum over q_i of the smallest unvisited-cell distance).
    double total = 0.0;
    for (uint32_t qi = 0; qi < state.query.size(); ++qi) {
      if (state.query[qi].activities.empty()) continue;
      const auto& cells = state.cells_n[qi];
      if (cells.empty()) return kInfDist;
      total += cells.begin()->mdist;
    }
    return total;
  }

  // Algorithm 2: per query point, make one virtual point per nearest
  // unvisited cell carrying the cell's demanded-activity subset at distance
  // mdist, then take min(Dmpm over the virtual trajectory, d(q, c_m)).
  double total = 0.0;
  std::vector<MatchPoint> virtual_points;
  for (uint32_t qi = 0; qi < state.query.size(); ++qi) {
    const auto& acts = state.query[qi].activities;
    if (acts.empty()) continue;  // contributes 0 to every Dmm
    const auto& cells = state.cells_n[qi];
    if (cells.empty()) {
      // Every cell containing q_i's activities was visited: all unseen
      // trajectories fail to match q_i entirely.
      return kInfDist;
    }
    const int bits =
        static_cast<int>(std::min<size_t>(acts.size(), kMaxQueryActivities));
    virtual_points.clear();
    double last_mdist = 0.0;
    uint32_t count = 0;
    for (const CellRef& ref : cells) {
      if (count == params_.nearest_cells) break;
      ActivityMask mask = 0;
      for (int b = 0; b < bits; ++b) {
        // The paper reads cell activities "directly from ITL" (memory
        // resident); no simulated disk access is charged here.
        if (index_.hicl().Contains(acts[b], ref.level, ref.code, nullptr)) {
          mask |= ActivityMask{1} << b;
        }
      }
      GAT_DCHECK(mask != 0);  // only activity-bearing cells are enqueued
      virtual_points.push_back(MatchPoint{ref.mdist, mask, count});
      last_mdist = ref.mdist;
      ++count;
    }
    const double dmpm =
        MinPointMatchDistance(virtual_points, bits).distance;
    const bool truncated = cells.size() > params_.nearest_cells;
    // When the list was truncated, unseen matches may also use cells
    // beyond the m-th, all at distance >= last_mdist (the paper's
    // min(Dmpm, d(q_i, p_m)) term). When it covers *all* unvisited cells,
    // Dmpm alone is the bound (and +inf correctly proves no unseen match).
    const double bound = truncated ? std::min(dmpm, last_mdist) : dmpm;
    if (bound == kInfDist) return kInfDist;
    total += bound;
  }
  return total;
}

void GatSearcher::ProcessCandidate(State& state, TrajectoryId t) const {
  ++state.stats.candidates_retrieved;

  // Validation stage 1: trajectory activity sketch (no disk access).
  if (params_.use_tas &&
      !index_.tas().MightContainAll(t, state.query_union)) {
    ++state.stats.tas_pruned;
    return;
  }
  // Validation stage 2: exact check against the activity posting lists.
  // Fetching a candidate's APL is one disk read; the subsequent MIB check
  // and distance evaluation reuse the fetched lists.
  if (!index_.apl().HasAllActivities(t, state.query_union, &state.disk)) {
    ++state.stats.activity_rejected;
    return;
  }
  // Validation stage 3 (OATSQ only): matching index bounds (Section VI-B).
  if (state.kind == QueryKind::kOatsq &&
      !MibValidFromApl(state.query, t, nullptr)) {
    ++state.stats.mib_rejected;
    return;
  }

  double distance;
  if (state.kind == QueryKind::kAtsq) {
    distance = DmmFromApl(state.query, t, nullptr);
  } else {
    // Dmom needs the full point sequence: fetch the trajectory (simulated
    // disk read) and run the Algorithm-4 DP with the running k-th best
    // Dmom as the pruning threshold.
    state.disk.RecordRead();
    distance = MinOrderSensitiveMatchDistance(dataset_.trajectory(t),
                                              state.query,
                                              state.collector.Threshold());
  }
  ++state.stats.distance_computations;
  state.collector.Offer(t, distance);
}

double GatSearcher::DmmFromApl(const Query& query, TrajectoryId t,
                               DiskAccessCounter* disk) const {
  const auto& tr = dataset_.trajectory(t);
  double total = 0.0;
  std::unordered_map<PointIndex, ActivityMask> point_masks;
  for (const auto& q : query.points()) {
    if (q.activities.empty()) continue;
    const int bits = static_cast<int>(
        std::min<size_t>(q.activities.size(), kMaxQueryActivities));
    // CP of Algorithm 3, assembled from the activity posting lists: the
    // mask bit b of a point is set iff the point appears in the posting
    // list of q.activities[b].
    point_masks.clear();
    for (int b = 0; b < bits; ++b) {
      for (PointIndex idx : index_.apl().Postings(t, q.activities[b], disk)) {
        point_masks[idx] |= ActivityMask{1} << b;
      }
    }
    std::vector<MatchPoint> cp;
    cp.reserve(point_masks.size());
    for (const auto& [idx, mask] : point_masks) {
      cp.push_back(
          MatchPoint{Distance(tr[idx].location, q.location), mask, idx});
    }
    const double d = MinPointMatchDistance(std::move(cp), bits).distance;
    if (d == kInfDist) return kInfDist;
    total += d;
  }
  return total;
}

bool GatSearcher::MibValidFromApl(const Query& query, TrajectoryId t,
                                  DiskAccessCounter* disk) const {
  // MIB(q_i) over the union of q_i's activity posting lists (each sorted
  // ascending): lb = min of first entries, ub = max of last entries.
  std::vector<MatchingIndexBound> mibs;
  mibs.reserve(query.size());
  for (const auto& q : query.points()) {
    MatchingIndexBound mib;
    for (ActivityId a : q.activities) {
      const auto postings = index_.apl().Postings(t, a, disk);
      if (postings.empty()) continue;
      if (!mib.valid) {
        mib.lb = postings.front();
        mib.ub = postings.back();
        mib.valid = true;
      } else {
        mib.lb = std::min(mib.lb, postings.front());
        mib.ub = std::max(mib.ub, postings.back());
      }
    }
    if (!mib.valid && !q.activities.empty()) return false;
    mibs.push_back(mib);
  }
  for (size_t i = 0; i < mibs.size(); ++i) {
    if (!mibs[i].valid) continue;
    for (size_t j = i + 1; j < mibs.size(); ++j) {
      if (mibs[j].valid && mibs[i].lb > mibs[j].ub) return false;
    }
  }
  return true;
}

}  // namespace gat
