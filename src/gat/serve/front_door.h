#ifndef GAT_SERVE_FRONT_DOOR_H_
#define GAT_SERVE_FRONT_DOOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "gat/common/clock.h"
#include "gat/common/query_context.h"
#include "gat/engine/query_engine.h"
#include "gat/live/checkin.h"
#include "gat/serve/token_bucket.h"

namespace gat {

class LiveIndex;

/// Per-tenant admission budget: sustained rate plus burst headroom.
struct TenantQuota {
  double tokens_per_sec = 100.0;
  double burst = 50.0;
};

/// FrontDoor knobs.
struct FrontDoorOptions {
  /// Time source for admission refill and deadline checks. nullptr =
  /// SteadyClock::Default() (real time). Benches and tests inject a
  /// ManualClock for deterministic outcomes.
  const Clock* clock = nullptr;

  /// Budget for tenants without an explicit entry.
  TenantQuota default_quota;

  /// Per-tenant overrides, looked up by tenant ID.
  std::vector<std::pair<uint32_t, TenantQuota>> tenant_quotas;

  /// Write-side admission: ingest batches draw from a SEPARATE bucket
  /// pool (one write bucket per tenant) so a write burst can never
  /// starve the same tenant's queries or vice versa. The bucket is
  /// charged one token per check-in (minimum one per batch).
  TenantQuota default_write_quota;
  std::vector<std::pair<uint32_t, TenantQuota>> tenant_write_quotas;
};

/// One request at the front door: a tenant's query batch plus its
/// serving envelope (priority class and absolute deadline).
///
/// The request OWNS its queries. A decoded wire request has no
/// caller-side vector to borrow, so ownership is the only shape that
/// survives the socket boundary; in-process callers move their batch in
/// (or keep the request alive and reuse it — Serve takes const-ref and
/// never consumes the payload).
struct ServeRequest {
  uint32_t tenant = 0;
  RequestPriority priority = RequestPriority::kInteractive;
  /// Absolute deadline in the front door's clock domain; 0 = none.
  uint64_t deadline_micros = 0;
  std::vector<Query> queries;
  size_t k = 10;
  QueryKind kind = QueryKind::kAtsq;
};

/// Request-level outcome. The numeric values are wire-stable: they are
/// encoded verbatim by gat/net and documented in docs/WIRE_PROTOCOL.md.
/// Add new values at the end; never renumber.
enum class ServeStatus : uint8_t {
  kOk = 0,
  kShed = 1,              // refused at admission; no engine work done
  kDeadlineExceeded = 2,  // admitted but expired; results are empty
};

/// Which admission policy refused a shed request. Machine-readable so
/// the wire layer never invents error strings. Values are wire-stable
/// (see docs/WIRE_PROTOCOL.md); add at the end, never renumber.
enum class ShedReason : uint8_t {
  kNone = 0,
  /// The tenant's token bucket had no token at admission time.
  /// ServeResult::shed_tenant names the tenant whose budget it was.
  kTenantRateLimit = 1,
  /// The tenant's WRITE bucket could not cover the ingest batch.
  /// IngestResult::shed_tenant names the tenant whose budget it was.
  kWriteRateLimit = 2,
};

struct ServeResult {
  ServeStatus status = ServeStatus::kOk;
  /// Machine-readable shed detail: which policy refused the request and
  /// whose budget was exhausted. kNone unless status == kShed.
  ShedReason shed_reason = ShedReason::kNone;
  uint32_t shed_tenant = 0;
  /// Populated only when status == kOk. Deadline-exceeded requests
  /// carry the batch's stats (the work burnt before expiry) but no
  /// results.
  BatchResult batch;
};

/// One write batch at the front door: a tenant's check-ins.
struct IngestRequest {
  uint32_t tenant = 0;
  std::vector<CheckIn> checkins;
};

/// Ingest-level outcome. Values are wire-stable (kIngestAck encodes
/// them verbatim; see docs/WIRE_PROTOCOL.md) — add at the end, never
/// renumber.
enum class IngestStatus : uint8_t {
  kOk = 0,
  kShed = 1,         // refused at write admission; nothing applied
  kInvalid = 2,      // failed frame validation; nothing applied
  kUnavailable = 3,  // no live index attached; nothing applied
};

struct IngestResult {
  IngestStatus status = IngestStatus::kOk;
  /// kWriteRateLimit when status == kShed, kNone otherwise.
  ShedReason shed_reason = ShedReason::kNone;
  uint32_t shed_tenant = 0;
  /// Check-ins applied: the whole batch on kOk, zero otherwise
  /// (ingestion is all-or-nothing at every layer).
  uint64_t accepted = 0;
  /// Cumulative LiveIndex watermark after this batch (kOk only): the
  /// freshness handle a client can correlate with query results.
  uint64_t watermark = 0;
};

/// Monotonic front-door counters. admitted + shed = total offered;
/// completed + deadline_misses = admitted (every admitted request ends
/// in exactly one of the two). On the write side:
/// ingest_admitted + ingest_shed = ingest batches offered;
/// ingest_failed counts admitted batches refused by validation or the
/// missing live index; checkins_accepted sums the applied check-ins.
struct FrontDoorCounters {
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t ingest_admitted = 0;
  uint64_t ingest_shed = 0;
  uint64_t ingest_failed = 0;
  uint64_t checkins_accepted = 0;
};

/// The serving front door: per-tenant token-bucket admission, deadline
/// propagation into the engine, and priority classes — everything that
/// stands between "a request arrived" and "executor tasks exist".
///
/// The contract that makes overload survivable: a shed request performs
/// ZERO engine work. `TryAdmit` consults only the tenant's bucket — no
/// task is created, no shard pinned, no prefetch issued — so shedding
/// 10x overload costs a mutex and a multiply per refusal, and
/// `Executor::tasks_submitted()` provably does not move (the soak tests
/// assert exactly that). Deadlines are enforced next: an admitted
/// request whose deadline already passed is refused before the engine
/// sees it, and one that expires mid-batch comes back empty
/// (kDeadlineExceeded), never with partial results. The request's
/// priority class rides the QueryContext into the executor's priority
/// queues, so bulk traffic yields the pool to interactive traffic.
///
/// Thread-safety: Serve/TryAdmit/ServeAdmitted may be called
/// concurrently from any number of threads; the bucket map has its own
/// mutex and the engine is already concurrent-safe.
class FrontDoor {
 public:
  /// `engine` is borrowed and must outlive the front door.
  FrontDoor(const QueryEngine& engine, FrontDoorOptions options = {});

  /// Admission + execution. Equivalent to TryAdmit followed (on
  /// success) by ServeAdmitted.
  ServeResult Serve(const ServeRequest& request);

  /// Admission only: charges the tenant's bucket at the current clock.
  /// False = shed (counted); the caller must not run the request.
  bool TryAdmit(uint32_t tenant);

  /// Executes an already-admitted request: deadline check (zero engine
  /// work when already expired), then the engine batch under the
  /// request's QueryContext.
  ServeResult ServeAdmitted(const ServeRequest& request);

  /// Attaches the write target. Ingest without one reports
  /// kUnavailable; the index is borrowed and must outlive the front
  /// door. Call before serving traffic (not synchronized against
  /// in-flight Ingest calls).
  void AttachLiveIndex(LiveIndex* live) { live_ = live; }

  /// Write admission + application. A shed batch performs ZERO index
  /// work — the same overload contract as the query side, enforced by
  /// a separate per-tenant write bucket charged one token per check-in.
  /// Admitted batches apply atomically through `LiveIndex::Ingest`
  /// (kInvalid when frame validation refuses them).
  IngestResult Ingest(const IngestRequest& request);

  FrontDoorCounters counters() const;

  const Clock& clock() const { return *clock_; }

 private:
  TokenBucket& BucketForLocked(uint32_t tenant);
  TokenBucket& WriteBucketForLocked(uint32_t tenant);

  const QueryEngine& engine_;
  const Clock* clock_;
  FrontDoorOptions options_;
  LiveIndex* live_ = nullptr;

  mutable std::mutex mu_;
  std::map<uint32_t, TokenBucket> buckets_;
  std::map<uint32_t, TokenBucket> write_buckets_;
  FrontDoorCounters counters_;
};

}  // namespace gat

#endif  // GAT_SERVE_FRONT_DOOR_H_
