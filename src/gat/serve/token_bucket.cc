#include "gat/serve/token_bucket.h"

#include <algorithm>

namespace gat {

TokenBucket::TokenBucket(double tokens_per_sec, double burst)
    : rate_per_micro_(tokens_per_sec / 1e6),
      burst_(burst),
      tokens_(burst) {}

bool TokenBucket::TryAcquire(uint64_t now_micros, double cost) {
  if (!primed_) {
    last_refill_micros_ = now_micros;
    primed_ = true;
  } else if (now_micros > last_refill_micros_) {
    const double elapsed =
        static_cast<double>(now_micros - last_refill_micros_);
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_micro_);
    last_refill_micros_ = now_micros;
  }
  // now_micros <= last_refill_micros_: no refill, no clock update — a
  // rewound clock cannot mint tokens.
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

}  // namespace gat
