#ifndef GAT_SERVE_TOKEN_BUCKET_H_
#define GAT_SERVE_TOKEN_BUCKET_H_

#include <cstdint>

namespace gat {

/// A classic token bucket: capacity `burst` tokens, refilled at
/// `tokens_per_sec`, drained by `TryAcquire`. The admission-control
/// primitive of the serving front door — one bucket per tenant.
///
/// Time is supplied by the caller as absolute microseconds (from a
/// `Clock`), so the bucket itself is a pure function of the call
/// sequence: under a virtual-time clock, admit/shed decisions are
/// bit-identical across machines and thread counts. Refill uses only
/// multiply/add on doubles (no transcendentals), keeping the arithmetic
/// deterministic across libm implementations.
///
/// Not internally synchronized: the owner (FrontDoor) serializes
/// access.
class TokenBucket {
 public:
  /// Starts full (`burst` tokens). `tokens_per_sec == 0` never refills:
  /// the tenant gets exactly the initial burst, then starves.
  TokenBucket(double tokens_per_sec, double burst);

  /// Refills for the elapsed time since the last call, then tries to
  /// take `cost` tokens. Returns true (and drains) on success; a failed
  /// acquire drains nothing. A `now_micros` earlier than the previous
  /// call refills nothing (clock rewinds are tolerated, not rewarded).
  bool TryAcquire(uint64_t now_micros, double cost = 1.0);

  double tokens() const { return tokens_; }

 private:
  const double rate_per_micro_;
  const double burst_;
  double tokens_;
  uint64_t last_refill_micros_ = 0;
  bool primed_ = false;  // first TryAcquire anchors the refill clock
};

}  // namespace gat

#endif  // GAT_SERVE_TOKEN_BUCKET_H_
