#include "gat/serve/load_driver.h"

#include <deque>
#include <queue>

#include "gat/common/check.h"
#include "gat/util/rng.h"
#include "gat/util/zipf.h"

namespace gat {

namespace {

uint64_t MsToMicros(double ms) { return static_cast<uint64_t>(ms * 1000.0); }

struct Pending {
  const ArrivalSpec* spec;
};

struct Completion {
  double finish_ms;
  uint64_t seq;  // FIFO tie-break for equal finish times
  bool operator>(const Completion& other) const {
    if (finish_ms != other.finish_ms) return finish_ms > other.finish_ms;
    return seq > other.seq;
  }
};

}  // namespace

std::vector<ArrivalSpec> MakeOpenLoopSchedule(
    const LoadScheduleParams& params) {
  GAT_CHECK(params.arrivals_per_sec > 0.0);
  GAT_CHECK(params.num_tenants > 0);
  Rng rng(params.seed);
  const ZipfSampler tenant_sampler(params.num_tenants,
                                   params.tenant_zipf_theta);
  const double mean_gap_ms = 1000.0 / params.arrivals_per_sec;

  std::vector<ArrivalSpec> schedule;
  uint32_t pool_cursor = 0;
  double t = 0.0;
  for (;;) {
    // Jittered-uniform gap in [0.25, 1.75) * mean: bursty, mean-
    // preserving, and multiply/add only — no libm transcendentals, so
    // the schedule is bit-identical on every machine.
    t += mean_gap_ms * (0.25 + 1.5 * rng.NextDouble());
    if (t >= params.duration_ms) break;
    ArrivalSpec spec;
    spec.arrival_ms = t;
    spec.tenant = tenant_sampler.Sample(rng);
    const bool interactive = rng.NextBool(params.interactive_fraction);
    spec.priority = interactive ? RequestPriority::kInteractive
                                : RequestPriority::kBulk;
    spec.deadline_budget_ms = interactive ? params.interactive_deadline_ms
                                          : params.bulk_deadline_ms;
    spec.num_queries =
        interactive ? params.interactive_queries : params.bulk_queries;
    spec.pool_offset = pool_cursor;
    pool_cursor += spec.num_queries;
    schedule.push_back(spec);
  }
  return schedule;
}

DriveOutcome RunOpenLoop(FrontDoor& door, ManualClock& clock,
                         const std::vector<ArrivalSpec>& schedule,
                         const std::vector<Query>& query_pool,
                         const DriverOptions& options,
                         const ServeObserver& observer) {
  GAT_CHECK(options.virtual_slots > 0);
  GAT_CHECK(!query_pool.empty());

  DriveOutcome outcome;
  auto class_of = [&outcome](RequestPriority p) -> ClassOutcome& {
    return p == RequestPriority::kInteractive ? outcome.interactive
                                              : outcome.bulk;
  };

  // Discrete-event state: per-class FIFO dispatch queues and a min-heap
  // of slot completions. The clock advances only here, between work
  // units — never while the engine runs a batch.
  std::deque<Pending> queues[2];
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;
  uint32_t free_slots = options.virtual_slots;
  uint64_t completion_seq = 0;
  size_t next_arrival = 0;
  double now_ms = 0.0;

  auto dispatch_one = [&]() -> bool {
    // Interactive drains first; FIFO within a class.
    std::deque<Pending>& q = !queues[0].empty() ? queues[0] : queues[1];
    if (q.empty()) return false;
    const ArrivalSpec& spec = *q.front().spec;
    q.pop_front();
    ClassOutcome& cls = class_of(spec.priority);

    ServeRequest request;
    request.tenant = spec.tenant;
    request.priority = spec.priority;
    if (spec.deadline_budget_ms > 0.0) {
      request.deadline_micros =
          MsToMicros(spec.arrival_ms + spec.deadline_budget_ms);
    }
    request.queries.reserve(spec.num_queries);
    for (uint32_t j = 0; j < spec.num_queries; ++j) {
      request.queries.push_back(
          query_pool[(spec.pool_offset + j) % query_pool.size()]);
    }
    request.k = options.k;
    request.kind = options.kind;

    // The engine runs with the clock frozen at `now_ms`: its entry
    // check catches requests that expired while queued (no slot is
    // consumed for those), and virtual service time — not real wall
    // time — decides when the slot frees.
    ServeResult result = door.ServeAdmitted(request);
    if (result.status == ServeStatus::kDeadlineExceeded) {
      ++cls.deadline_misses;
      if (observer) observer(spec, result);
      return true;
    }
    ++cls.completed;
    const double finish_ms =
        now_ms + options.service_ms_per_query * spec.num_queries;
    cls.latency_ms.push_back(finish_ms - spec.arrival_ms);
    cls.totals += result.batch.totals;
    completions.push(Completion{finish_ms, completion_seq++});
    --free_slots;
    if (observer) observer(spec, result);
    return true;
  };

  while (next_arrival < schedule.size() || !completions.empty()) {
    // Completions fire before arrivals at the same instant, so a slot
    // freed at t can serve a request arriving at t.
    bool take_completion;
    if (completions.empty()) {
      take_completion = false;
    } else if (next_arrival >= schedule.size()) {
      take_completion = true;
    } else {
      take_completion =
          completions.top().finish_ms <= schedule[next_arrival].arrival_ms;
    }

    if (take_completion) {
      now_ms = completions.top().finish_ms;
      completions.pop();
      clock.SetMicros(MsToMicros(now_ms));
      ++free_slots;
    } else {
      const ArrivalSpec& spec = schedule[next_arrival++];
      now_ms = spec.arrival_ms;
      clock.SetMicros(MsToMicros(now_ms));
      ClassOutcome& cls = class_of(spec.priority);
      ++cls.offered;
      if (door.TryAdmit(spec.tenant)) {
        ++cls.admitted;
        queues[static_cast<size_t>(spec.priority)].push_back(Pending{&spec});
      } else {
        ++cls.shed;
        if (observer) {
          ServeResult shed;
          shed.status = ServeStatus::kShed;
          shed.shed_reason = ShedReason::kTenantRateLimit;
          shed.shed_tenant = spec.tenant;
          observer(spec, shed);
        }
      }
    }

    while (free_slots > 0 && dispatch_one()) {
    }
    if (now_ms > outcome.virtual_duration_ms) {
      outcome.virtual_duration_ms = now_ms;
    }
  }
  return outcome;
}

}  // namespace gat
