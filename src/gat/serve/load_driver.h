#ifndef GAT_SERVE_LOAD_DRIVER_H_
#define GAT_SERVE_LOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "gat/common/clock.h"
#include "gat/common/query_context.h"
#include "gat/model/query.h"
#include "gat/search/search_stats.h"
#include "gat/serve/front_door.h"

namespace gat {

/// One request arrival in an open-loop schedule. Times are virtual
/// milliseconds from the schedule start; `pool_offset` indexes the
/// caller's query pool (the driver slices `num_queries` queries from
/// there, wrapping at the pool end).
struct ArrivalSpec {
  double arrival_ms = 0.0;
  uint32_t tenant = 0;
  RequestPriority priority = RequestPriority::kInteractive;
  double deadline_budget_ms = 0.0;  // relative to arrival; 0 = none
  uint32_t num_queries = 1;
  uint32_t pool_offset = 0;
};

/// Knobs of MakeOpenLoopSchedule.
struct LoadScheduleParams {
  double arrivals_per_sec = 200.0;
  double duration_ms = 1000.0;
  uint32_t num_tenants = 8;
  /// Tenant popularity skew: tenant ranks are Zipf(theta)-distributed,
  /// so a few hot tenants dominate — the regime where per-tenant
  /// buckets matter.
  double tenant_zipf_theta = 0.9;
  double interactive_fraction = 0.7;
  double interactive_deadline_ms = 50.0;
  double bulk_deadline_ms = 500.0;
  uint32_t interactive_queries = 1;
  uint32_t bulk_queries = 4;
  uint64_t seed = 42;
};

/// Builds a deterministic open-loop arrival schedule: inter-arrival
/// gaps are jittered-uniform around the mean (gap = mean * (0.25 +
/// 1.5u), u ~ U[0,1)) — bursty enough to exercise the buckets, and
/// computed with multiply/add only so the schedule is bit-identical
/// across libm implementations. Tenants are Zipf-skewed; priority
/// class, deadline budget and batch size follow the class split.
std::vector<ArrivalSpec> MakeOpenLoopSchedule(const LoadScheduleParams& params);

/// Knobs of RunOpenLoop's virtual service model.
struct DriverOptions {
  /// Concurrent virtual servers. Fixed independently of --threads, so
  /// the simulated timeline (and with it every admit/shed/deadline
  /// outcome) does not depend on the machine.
  uint32_t virtual_slots = 4;
  /// Virtual service time per query in a request's batch.
  double service_ms_per_query = 5.0;
  size_t k = 10;
  QueryKind kind = QueryKind::kAtsq;
};

/// Per-priority-class outcome of one RunOpenLoop.
struct ClassOutcome {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deadline_misses = 0;
  uint64_t completed = 0;
  /// Virtual end-to-end latency (queueing + service) of each completed
  /// request, in arrival order.
  std::vector<double> latency_ms;
  /// Real search-work counters summed over completed requests.
  SearchStats totals;
};

struct DriveOutcome {
  ClassOutcome interactive;
  ClassOutcome bulk;
  /// Virtual time at which the last completion drained.
  double virtual_duration_ms = 0.0;
};

/// Observes every request outcome as it happens (arrival order for
/// sheds/expired-at-dispatch, completion order otherwise). For tests
/// that assert bit-identity of results across thread counts.
using ServeObserver =
    std::function<void(const ArrivalSpec&, const ServeResult&)>;

/// Drives an open-loop schedule through a FrontDoor as a discrete-event
/// simulation over `clock` (which MUST be the front door's clock).
///
/// Virtual time decouples the simulated timeline from real execution:
/// the clock only advances between work units — it is frozen while the
/// engine runs a batch — so admission refills, deadline expiries and
/// latencies are pure functions of the schedule and the service model.
/// That is what makes the overload suite deterministic: counters and
/// latency vectors are bit-identical at --threads 1 and --threads 4,
/// on any machine. Real executor parallelism still happens *inside*
/// each admitted batch (shard fan-out, engine slots); it just cannot
/// leak into the simulated timeline.
///
/// Service model: `virtual_slots` servers; a dispatched request
/// occupies one slot for `service_ms_per_query * num_queries` virtual
/// ms. Queued requests dispatch interactive-first (FIFO within class).
/// A request whose deadline passes before dispatch is a deadline miss
/// and never reaches the engine; deadlines are also re-checked inside
/// the engine at task boundaries.
DriveOutcome RunOpenLoop(FrontDoor& door, ManualClock& clock,
                         const std::vector<ArrivalSpec>& schedule,
                         const std::vector<Query>& query_pool,
                         const DriverOptions& options,
                         const ServeObserver& observer = nullptr);

}  // namespace gat

#endif  // GAT_SERVE_LOAD_DRIVER_H_
