#include "gat/serve/front_door.h"

#include "gat/common/check.h"

namespace gat {

FrontDoor::FrontDoor(const QueryEngine& engine, FrontDoorOptions options)
    : engine_(engine),
      clock_(options.clock != nullptr ? options.clock
                                      : &SteadyClock::Default()),
      options_(std::move(options)) {}

TokenBucket& FrontDoor::BucketForLocked(uint32_t tenant) {
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return it->second;
  TenantQuota quota = options_.default_quota;
  for (const auto& entry : options_.tenant_quotas) {
    if (entry.first == tenant) {
      quota = entry.second;
      break;
    }
  }
  return buckets_
      .emplace(tenant, TokenBucket(quota.tokens_per_sec, quota.burst))
      .first->second;
}

bool FrontDoor::TryAdmit(uint32_t tenant) {
  const uint64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (BucketForLocked(tenant).TryAcquire(now)) {
    ++counters_.admitted;
    return true;
  }
  ++counters_.shed;
  return false;
}

ServeResult FrontDoor::ServeAdmitted(const ServeRequest& request) {
  ServeResult out;

  QueryContext context;
  context.clock = clock_;
  context.deadline_micros = request.deadline_micros;
  context.priority = request.priority;

  // Deadline gate before the engine: a request that is already dead
  // creates no tasks, pins nothing, prefetches nothing.
  if (context.Expired()) {
    out.status = ServeStatus::kDeadlineExceeded;
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.deadline_misses;
    return out;
  }

  BatchResult batch =
      engine_.Run(request.queries, request.k, request.kind, &context);
  if (batch.deadline_exceeded > 0) {
    // Expired mid-batch. Never partial results: the whole request
    // reports deadline-exceeded with empty answers. The stats stay —
    // they record the work the miss actually burnt.
    for (ResultList& r : batch.results) r.clear();
    out.status = ServeStatus::kDeadlineExceeded;
    out.batch = std::move(batch);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.deadline_misses;
    return out;
  }

  out.status = ServeStatus::kOk;
  out.batch = std::move(batch);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.completed;
  return out;
}

ServeResult FrontDoor::Serve(const ServeRequest& request) {
  if (!TryAdmit(request.tenant)) {
    ServeResult out;
    out.status = ServeStatus::kShed;
    out.shed_reason = ShedReason::kTenantRateLimit;
    out.shed_tenant = request.tenant;
    return out;
  }
  return ServeAdmitted(request);
}

FrontDoorCounters FrontDoor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace gat
