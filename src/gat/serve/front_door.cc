#include "gat/serve/front_door.h"

#include <algorithm>

#include "gat/common/check.h"
#include "gat/live/live_index.h"

namespace gat {

FrontDoor::FrontDoor(const QueryEngine& engine, FrontDoorOptions options)
    : engine_(engine),
      clock_(options.clock != nullptr ? options.clock
                                      : &SteadyClock::Default()),
      options_(std::move(options)) {}

TokenBucket& FrontDoor::BucketForLocked(uint32_t tenant) {
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return it->second;
  TenantQuota quota = options_.default_quota;
  for (const auto& entry : options_.tenant_quotas) {
    if (entry.first == tenant) {
      quota = entry.second;
      break;
    }
  }
  return buckets_
      .emplace(tenant, TokenBucket(quota.tokens_per_sec, quota.burst))
      .first->second;
}

TokenBucket& FrontDoor::WriteBucketForLocked(uint32_t tenant) {
  auto it = write_buckets_.find(tenant);
  if (it != write_buckets_.end()) return it->second;
  TenantQuota quota = options_.default_write_quota;
  for (const auto& entry : options_.tenant_write_quotas) {
    if (entry.first == tenant) {
      quota = entry.second;
      break;
    }
  }
  return write_buckets_
      .emplace(tenant, TokenBucket(quota.tokens_per_sec, quota.burst))
      .first->second;
}

bool FrontDoor::TryAdmit(uint32_t tenant) {
  const uint64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (BucketForLocked(tenant).TryAcquire(now)) {
    ++counters_.admitted;
    return true;
  }
  ++counters_.shed;
  return false;
}

ServeResult FrontDoor::ServeAdmitted(const ServeRequest& request) {
  ServeResult out;

  QueryContext context;
  context.clock = clock_;
  context.deadline_micros = request.deadline_micros;
  context.priority = request.priority;

  // Deadline gate before the engine: a request that is already dead
  // creates no tasks, pins nothing, prefetches nothing.
  if (context.Expired()) {
    out.status = ServeStatus::kDeadlineExceeded;
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.deadline_misses;
    return out;
  }

  BatchResult batch =
      engine_.Run(request.queries, request.k, request.kind, &context);
  if (batch.deadline_exceeded > 0) {
    // Expired mid-batch. Never partial results: the whole request
    // reports deadline-exceeded with empty answers. The stats stay —
    // they record the work the miss actually burnt.
    for (ResultList& r : batch.results) r.clear();
    out.status = ServeStatus::kDeadlineExceeded;
    out.batch = std::move(batch);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.deadline_misses;
    return out;
  }

  out.status = ServeStatus::kOk;
  out.batch = std::move(batch);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.completed;
  return out;
}

ServeResult FrontDoor::Serve(const ServeRequest& request) {
  if (!TryAdmit(request.tenant)) {
    ServeResult out;
    out.status = ServeStatus::kShed;
    out.shed_reason = ShedReason::kTenantRateLimit;
    out.shed_tenant = request.tenant;
    return out;
  }
  return ServeAdmitted(request);
}

IngestResult FrontDoor::Ingest(const IngestRequest& request) {
  IngestResult out;
  // Write admission first, shed-is-free: a refused batch touches no
  // index structure, takes no writer lock, copies nothing. The bucket
  // charge is the batch size — per-check-in cost, so one huge batch
  // cannot launder past a rate meant for check-ins.
  const double cost = std::max<double>(1.0, request.checkins.size());
  const uint64_t now = clock_->NowMicros();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!WriteBucketForLocked(request.tenant).TryAcquire(now, cost)) {
      ++counters_.ingest_shed;
      out.status = IngestStatus::kShed;
      out.shed_reason = ShedReason::kWriteRateLimit;
      out.shed_tenant = request.tenant;
      return out;
    }
    ++counters_.ingest_admitted;
  }

  if (live_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.ingest_failed;
    out.status = IngestStatus::kUnavailable;
    return out;
  }
  uint64_t watermark = 0;
  if (!live_->Ingest(request.checkins, &watermark)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.ingest_failed;
    out.status = IngestStatus::kInvalid;
    return out;
  }
  out.status = IngestStatus::kOk;
  out.accepted = request.checkins.size();
  out.watermark = watermark;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.checkins_accepted += out.accepted;
  return out;
}

FrontDoorCounters FrontDoor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace gat
